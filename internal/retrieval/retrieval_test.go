package retrieval

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"figfusion/internal/corr"
	"figfusion/internal/dataset"
	"figfusion/internal/fig"
	"figfusion/internal/index"
	"figfusion/internal/media"
	"figfusion/internal/mrf"
	"figfusion/internal/topk"
)

func testData(t testing.TB) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumObjects = 150
	cfg.NumTopics = 5
	cfg.TagsPerTopic = 8
	cfg.NoiseTags = 24
	cfg.UsersPerTopic = 8
	cfg.VisualVocab = 12
	cfg.VocabTrainImages = 40
	cfg.ImageBlocks = 2
	cfg.KMeansIters = 8
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newEngine(t testing.TB, d *dataset.Dataset, cfg Config) *Engine {
	t.Helper()
	e, err := NewEngine(d.Model(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSearchFindsTopicMatches(t *testing.T) {
	d := testData(t)
	e := newEngine(t, d, Config{})
	q := d.Corpus.Object(0)
	results := e.Search(q, 10, q.ID)
	if len(results) == 0 {
		t.Fatal("no results")
	}
	relevant := 0
	for _, it := range results {
		if it.ID == q.ID {
			t.Error("excluded query returned")
		}
		if dataset.Relevant(q, d.Corpus.Object(it.ID)) {
			relevant++
		}
	}
	// With 5 topics, random precision would be ~0.2; the engine must do
	// far better on a planted corpus.
	if relevant < len(results)/2 {
		t.Errorf("only %d/%d relevant", relevant, len(results))
	}
	// Scores are positive and sorted best-first.
	for i, it := range results {
		if it.Score <= 0 {
			t.Errorf("result %d score %v", i, it.Score)
		}
		if i > 0 && topk.Less(results[i], results[i-1]) == false && results[i].Score > results[i-1].Score {
			t.Error("results not sorted")
		}
	}
}

func TestSearchAgreesWithScan(t *testing.T) {
	d := testData(t)
	e := newEngine(t, d, Config{})
	q := d.Corpus.Object(3)
	idx := e.Search(q, 10, q.ID)
	scan := e.SearchScan(q, 10, q.ID)
	if len(idx) == 0 || len(scan) == 0 {
		t.Fatal("empty results")
	}
	// Indexed search prunes objects sharing no clique with the query and
	// drops cross-clique smoothing, so the exact ID sets can differ; what
	// must hold is that the pruning does not degrade retrieval quality.
	relevant := func(items []topk.Item) int {
		n := 0
		for _, it := range items {
			if dataset.Relevant(q, d.Corpus.Object(it.ID)) {
				n++
			}
		}
		return n
	}
	idxRel, scanRel := relevant(idx), relevant(scan)
	if idxRel < scanRel-3 {
		t.Errorf("indexed search much worse than scan: %d vs %d relevant of %d",
			idxRel, scanRel, len(idx))
	}
	// And some overlap must remain — the two paths rank the same corpus.
	scanSet := make(map[media.ObjectID]bool)
	for _, it := range scan {
		scanSet[it.ID] = true
	}
	common := 0
	for _, it := range idx {
		if scanSet[it.ID] {
			common++
		}
	}
	if common == 0 {
		t.Error("index and scan results are disjoint")
	}
}

func TestSearchMergeFullMatchesSearchTA(t *testing.T) {
	d := testData(t)
	e := newEngine(t, d, Config{})
	q := d.Corpus.Object(7)
	ta := e.SearchTA(q, 5, q.ID)
	full := e.SearchMergeFull(q, 5, q.ID)
	if len(ta) != len(full) {
		t.Fatalf("lengths differ: %d vs %d", len(ta), len(full))
	}
	for i := range ta {
		if ta[i].ID != full[i].ID {
			t.Errorf("rank %d: TA %v vs full %v", i, ta[i], full[i])
		}
	}
}

func TestSearchExclusion(t *testing.T) {
	d := testData(t)
	e := newEngine(t, d, Config{})
	q := d.Corpus.Object(1)
	withSelf := e.Search(q, 5, NoExclude)
	// An in-corpus query object almost always tops its own result list.
	found := false
	for _, it := range withSelf {
		if it.ID == q.ID {
			found = true
		}
	}
	if !found {
		t.Error("query object missing from unexcluded results")
	}
	without := e.Search(q, 5, q.ID)
	for _, it := range without {
		if it.ID == q.ID {
			t.Error("excluded object returned")
		}
	}
}

func TestSkipIndexFallsBackToScan(t *testing.T) {
	d := testData(t)
	e := newEngine(t, d, Config{SkipIndex: true})
	if e.Index != nil {
		t.Fatal("index built despite SkipIndex")
	}
	q := d.Corpus.Object(2)
	got := e.Search(q, 5, q.ID)
	want := e.SearchScan(q, 5, q.ID)
	if len(got) != len(want) {
		t.Fatalf("lengths differ")
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("rank %d differs: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestKindsRestrictedEngine(t *testing.T) {
	d := testData(t)
	textOnly := newEngine(t, d, Config{BuildOpts: fig.Options{Kinds: []media.Kind{media.Text}}})
	q := d.Corpus.Object(4)
	cliques := textOnly.QueryCliques(q)
	corpus := d.Corpus
	for _, c := range cliques {
		for _, f := range c.Feats {
			if corpus.KindOf(f) != media.Text {
				t.Fatalf("non-text feature %v in text-only clique", f)
			}
		}
	}
	if got := textOnly.Search(q, 5, q.ID); len(got) == 0 {
		t.Error("text-only search returned nothing")
	}
}

func TestNewEngineDefaultsParams(t *testing.T) {
	d := testData(t)
	e := newEngine(t, d, Config{})
	if len(e.Scorer.Params.Lambda) == 0 {
		t.Error("params not defaulted")
	}
}

func TestNewEngineRejectsBadParams(t *testing.T) {
	d := testData(t)
	if _, err := NewEngine(d.Model(), Config{Params: mrf.Params{Lambda: []float64{-1}, Delta: 1}}); err == nil {
		t.Error("want error for invalid params")
	}
}

func TestQueryNotInCorpus(t *testing.T) {
	// An external query object (built from corpus features but not added)
	// must still retrieve.
	d := testData(t)
	e := newEngine(t, d, Config{})
	src := d.Corpus.Object(5)
	ext := media.NewObject(9999, func() []media.FeatureCount {
		fcs := make([]media.FeatureCount, len(src.Feats))
		for i, f := range src.Feats {
			fcs[i] = media.FeatureCount{FID: f, Count: src.Counts[i]}
		}
		return fcs
	}(), src.Month)
	got := e.Search(ext, 5, NoExclude)
	if len(got) == 0 {
		t.Fatal("external query found nothing")
	}
	if got[0].ID != src.ID {
		t.Errorf("clone query should rank its source first, got %v", got[0])
	}
}

func BenchmarkSearchIndexed(b *testing.B) {
	d := testData(b)
	e := newEngine(b, d, Config{})
	q := d.Corpus.Object(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Search(q, 10, q.ID)
	}
}

func BenchmarkSearchScan(b *testing.B) {
	d := testData(b)
	e := newEngine(b, d, Config{})
	q := d.Corpus.Object(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.SearchScan(q, 10, q.ID)
	}
}

func TestSearchInvariants(t *testing.T) {
	d := testData(t)
	e := newEngine(t, d, Config{})
	for qid := 0; qid < 20; qid++ {
		q := d.Corpus.Object(media.ObjectID(qid))
		for _, k := range []int{1, 5, 25} {
			results := e.Search(q, k, q.ID)
			if len(results) > k {
				t.Fatalf("q=%d k=%d: %d results", qid, k, len(results))
			}
			seen := make(map[media.ObjectID]bool)
			for i, it := range results {
				if it.Score <= 0 {
					t.Fatalf("q=%d: non-positive score %v", qid, it.Score)
				}
				if seen[it.ID] {
					t.Fatalf("q=%d: duplicate result %d", qid, it.ID)
				}
				seen[it.ID] = true
				if i > 0 && results[i-1].Score < it.Score {
					t.Fatalf("q=%d: results not sorted at %d", qid, i)
				}
			}
		}
	}
}

func TestConcurrentSearches(t *testing.T) {
	d := testData(t)
	e := newEngine(t, d, Config{})
	// Reference results computed serially.
	want := make([][]topk.Item, 10)
	for i := range want {
		q := d.Corpus.Object(media.ObjectID(i))
		want[i] = e.Search(q, 5, q.ID)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 80)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				q := d.Corpus.Object(media.ObjectID(i))
				got := e.Search(q, 5, q.ID)
				if len(got) != len(want[i]) {
					errs <- fmt.Errorf("query %d: %d results, want %d", i, len(got), len(want[i]))
					return
				}
				for j := range got {
					if got[j] != want[i][j] {
						errs <- fmt.Errorf("query %d rank %d: %v != %v", i, j, got[j], want[i][j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestInsertThenSearch(t *testing.T) {
	d := testData(t)
	e := newEngine(t, d, Config{})
	before := d.Corpus.Len()
	// Clone an existing object's features into a new insert.
	src := d.Corpus.Object(9)
	feats := make([]media.Feature, len(src.Feats))
	counts := make([]int, len(src.Feats))
	for i, fid := range src.Feats {
		feats[i] = d.Corpus.Dict.Feature(fid)
		counts[i] = int(src.Counts[i])
	}
	inserted, err := e.Insert(feats, counts, src.Month)
	if err != nil {
		t.Fatal(err)
	}
	if d.Corpus.Len() != before+1 {
		t.Fatalf("corpus did not grow: %d", d.Corpus.Len())
	}
	if int(inserted.ID) != before {
		t.Fatalf("inserted ID = %d, want %d", inserted.ID, before)
	}
	// The near-duplicate source must retrieve the inserted object at the
	// top through the live index.
	results := e.Search(src, 3, src.ID)
	if len(results) == 0 || results[0].ID != inserted.ID {
		t.Fatalf("inserted object not top result: %v", results)
	}
	// And the inserted object retrieves its source.
	back := e.Search(inserted, 3, inserted.ID)
	if len(back) == 0 || back[0].ID != src.ID {
		t.Fatalf("reverse search failed: %v", back)
	}
}

func TestInsertInvalidatesStats(t *testing.T) {
	d := testData(t)
	e := newEngine(t, d, Config{})
	// Statistics after inserts must equal a from-scratch engine over the
	// same corpus.
	for i := 0; i < 3; i++ {
		src := d.Corpus.Object(media.ObjectID(i))
		feats := make([]media.Feature, len(src.Feats))
		counts := make([]int, len(src.Feats))
		for j, fid := range src.Feats {
			feats[j] = d.Corpus.Dict.Feature(fid)
			counts[j] = int(src.Counts[j])
		}
		if _, err := e.Insert(feats, counts, src.Month); err != nil {
			t.Fatal(err)
		}
	}
	fresh := corr.NewStats(d.Corpus)
	for fid := media.FID(0); int(fid) < d.Corpus.Dict.Len(); fid++ {
		if e.Model.Stats.Mean(fid) != fresh.Mean(fid) {
			t.Fatalf("mean differs for FID %d after inserts", fid)
		}
		if len(e.Model.Stats.Postings(fid)) != len(fresh.Postings(fid)) {
			t.Fatalf("postings differ for FID %d after inserts", fid)
		}
	}
}

func TestInsertValidation(t *testing.T) {
	d := testData(t)
	e := newEngine(t, d, Config{})
	if _, err := e.Insert([]media.Feature{{Kind: media.Text, Name: "x"}}, []int{0}, 0); err == nil {
		t.Error("want error for invalid counts")
	}
}

func TestPrebuiltIndexRoundTrip(t *testing.T) {
	d := testData(t)
	e := newEngine(t, d, Config{})
	var buf bytes.Buffer
	if err := e.Index.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := index.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(d.Model(), Config{Index: loaded})
	if err != nil {
		t.Fatal(err)
	}
	q := d.Corpus.Object(4)
	a := e.Search(q, 5, q.ID)
	b := e2.Search(q, 5, q.ID)
	if len(a) != len(b) {
		t.Fatalf("result lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Errorf("rank %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCandidateCap(t *testing.T) {
	d := testData(t)
	uncapped := newEngine(t, d, Config{})
	capped := newEngine(t, d, Config{CandidateCap: 20})
	q := d.Corpus.Object(6)
	a := uncapped.Search(q, 10, q.ID)
	b := capped.Search(q, 10, q.ID)
	if len(b) == 0 {
		t.Fatal("capped search found nothing")
	}
	if len(b) > 10 {
		t.Fatalf("capped search returned %d", len(b))
	}
	// Quality must not collapse: the capped top-10 keeps most of the
	// relevant mass the uncapped search finds.
	rel := func(items []topk.Item) int {
		n := 0
		for _, it := range items {
			if dataset.Relevant(q, d.Corpus.Object(it.ID)) {
				n++
			}
		}
		return n
	}
	if rel(b) < rel(a)-3 {
		t.Errorf("cap lost too much: %d vs %d relevant", rel(b), rel(a))
	}
	// Determinism.
	b2 := capped.Search(q, 10, q.ID)
	for i := range b {
		if b[i] != b2[i] {
			t.Fatal("capped search not deterministic")
		}
	}
}
