package retrieval

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"figfusion/internal/media"
)

// fullRunBytes performs one complete, independent pipeline run — dataset
// generation from the fixed seed, threshold training with an injected
// seeded rng, index build, and top-k retrieval over a block of queries —
// and serializes the ranked ID lists plus the persisted index to bytes.
func fullRunBytes(t *testing.T) []byte {
	t.Helper()
	d := testData(t) // same dataset.Config (and seed) on every call
	m := d.Model()
	m.TrainThresholds(100, 0.35, rand.New(rand.NewSource(13)))
	e := newEngine(t, d, Config{})
	var buf bytes.Buffer
	for i := 0; i < 20; i++ {
		q := d.Corpus.Object(media.ObjectID(i))
		for _, it := range e.Search(q, 10, q.ID) {
			fmt.Fprintf(&buf, "%d>%d@%.17g ", q.ID, it.ID, it.Score)
		}
		buf.WriteByte('\n')
		// SearchScan exercises the fan-out scoring path, whose worker
		// partials must merge deterministically.
		for _, it := range e.SearchScan(q, 10, q.ID) {
			fmt.Fprintf(&buf, "%d>>%d ", q.ID, it.ID)
		}
		buf.WriteByte('\n')
	}
	// The two-stage refinement path: the capped candidate pre-rank
	// (shared-clique count, ties by ID) must be as reproducible as the
	// uncapped union.
	capped := newEngine(t, d, Config{CandidateCap: 25})
	for i := 0; i < 20; i++ {
		q := d.Corpus.Object(media.ObjectID(i))
		for _, it := range capped.Search(q, 10, q.ID) {
			fmt.Fprintf(&buf, "%d!%d@%.17g ", q.ID, it.ID, it.Score)
		}
		buf.WriteByte('\n')
	}
	if e.Index != nil {
		if err := e.Index.Save(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestDeterministicRuns is the EXPERIMENTS.md reproducibility contract as
// a regression test: two full index-build + retrieval runs from the same
// dataset seed must produce byte-identical ranked ID lists (and a
// byte-identical persisted index — map iteration order must never leak
// into either).
func TestDeterministicRuns(t *testing.T) {
	first := fullRunBytes(t)
	second := fullRunBytes(t)
	if !bytes.Equal(first, second) {
		limit := len(first)
		if len(second) < limit {
			limit = len(second)
		}
		at := limit
		for i := 0; i < limit; i++ {
			if first[i] != second[i] {
				at = i
				break
			}
		}
		t.Fatalf("two seeded runs diverge (lengths %d vs %d, first difference at byte %d)", len(first), len(second), at)
	}
}
