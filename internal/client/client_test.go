package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"figfusion/internal/api"
)

func writeEnvelope(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(api.ErrorResponse{Error: api.ErrorBody{Code: code, Message: msg}})
}

// TestBaseNormalization: bare host:port gets a scheme, trailing slashes
// are trimmed.
func TestBaseNormalization(t *testing.T) {
	if got := New("localhost:8080").Base(); got != "http://localhost:8080" {
		t.Errorf("Base = %q", got)
	}
	if got := New("https://x.example/").Base(); got != "https://x.example" {
		t.Errorf("Base = %q", got)
	}
}

// TestSearchRoundTrip: a wire search marshals the request and decodes the
// response through the shared api structs.
func TestSearchRoundTrip(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/search" {
			t.Errorf("got %s %s", r.Method, r.URL.Path)
		}
		var req api.SearchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Error(err)
		}
		if req.ID == nil || *req.ID != 5 || req.K != 3 {
			t.Errorf("decoded request = %+v", req)
		}
		_ = json.NewEncoder(w).Encode(api.WireSearchResponse{Results: []api.Item{{ID: 1, Score: 2.5}}})
	}))
	defer ts.Close()
	c := New(ts.URL)
	defer c.Close()
	id := int64(5)
	resp, err := c.Search(context.Background(), &api.SearchRequest{ID: &id, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].ID != 1 || resp.Results[0].Score != 2.5 {
		t.Errorf("resp = %+v", resp)
	}
}

// TestAPIErrorDecoding: a non-2xx envelope surfaces as *APIError with the
// status, code, message and parsed Retry-After.
func TestAPIErrorDecoding(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.RetryAfterHeader, "2")
		writeEnvelope(w, http.StatusServiceUnavailable, api.CodeUnavailable, "overloaded")
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetries(0))
	defer c.Close()
	_, err := c.Healthz(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v (%T)", err, err)
	}
	if apiErr.Status != http.StatusServiceUnavailable || apiErr.Code != api.CodeUnavailable {
		t.Errorf("APIError = %+v", apiErr)
	}
	if apiErr.Message != "overloaded" {
		t.Errorf("message = %q", apiErr.Message)
	}
	if apiErr.RetryAfter != 2*time.Second {
		t.Errorf("RetryAfter = %v, want 2s", apiErr.RetryAfter)
	}
}

// TestRetryOn503: the client retries a shed request and succeeds once the
// server admits it; the retry count is bounded.
func TestRetryOn503(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set(api.RetryAfterHeader, "0")
			writeEnvelope(w, http.StatusServiceUnavailable, api.CodeUnavailable, "overloaded")
			return
		}
		_ = json.NewEncoder(w).Encode(api.HealthResponse{Status: "ok", Objects: 7})
	}))
	defer ts.Close()
	c := New(ts.URL, WithBackoff(time.Millisecond))
	defer c.Close()
	resp, err := c.Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Objects != 7 {
		t.Errorf("objects = %d", resp.Objects)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3", got)
	}
}

// TestRetriesExhausted: a server that never recovers surfaces the final
// 503 after exactly 1+retries attempts.
func TestRetriesExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeEnvelope(w, http.StatusServiceUnavailable, api.CodeUnavailable, "overloaded")
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetries(2), WithBackoff(time.Millisecond))
	defer c.Close()
	_, err := c.Healthz(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (1 + 2 retries)", got)
	}
}

// TestNo503RetryWhenDisabled: WithRetries(0) observes every shed — the
// load generator's configuration.
func TestNo503RetryWhenDisabled(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeEnvelope(w, http.StatusServiceUnavailable, api.CodeUnavailable, "overloaded")
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetries(0))
	defer c.Close()
	if _, err := c.Healthz(context.Background()); err == nil {
		t.Fatal("no error")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want 1", got)
	}
}

// TestNoRetryOnOtherStatuses: only 503 retries — a 504 ran out of budget
// mid-execution and a 400 will never succeed.
func TestNoRetryOnOtherStatuses(t *testing.T) {
	for _, tc := range []struct {
		status int
		code   string
	}{
		{http.StatusGatewayTimeout, api.CodeDeadlineExceeded},
		{http.StatusBadRequest, api.CodeInvalidArgument},
	} {
		var calls atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			writeEnvelope(w, tc.status, tc.code, "nope")
		}))
		c := New(ts.URL, WithBackoff(time.Millisecond))
		var apiErr *APIError
		if _, err := c.Healthz(context.Background()); !errors.As(err, &apiErr) || apiErr.Code != tc.code {
			t.Fatalf("status %d: err = %v", tc.status, err)
		}
		if got := calls.Load(); got != 1 {
			t.Errorf("status %d: server saw %d calls, want 1", tc.status, got)
		}
		c.Close()
		ts.Close()
	}
}

// TestBackoffHonoursContext: cancelling mid-backoff aborts the retry loop
// with the context's error.
func TestBackoffHonoursContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.RetryAfterHeader, "30")
		writeEnvelope(w, http.StatusServiceUnavailable, api.CodeUnavailable, "overloaded")
	}))
	defer ts.Close()
	c := New(ts.URL)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Healthz(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v — the 30s Retry-After was not interrupted", elapsed)
	}
}
