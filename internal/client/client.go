// Package client is the typed Go client for the figfusion /v1 HTTP API.
// It is the one place in the tree that turns the wire contract declared in
// internal/api into method calls: the cluster router's HTTPBackend, the
// figsearch remote mode and the figload generator all speak /v1 through
// it, so a wire change is a two-file affair (internal/api + the handler)
// instead of a hunt across every caller.
//
// A Client multiplexes requests over pooled keep-alive connections and is
// safe for concurrent use. Every call takes a context and honours its
// cancellation and deadline.
//
// Error handling follows the contract's envelope discipline: any non-2xx
// response with a decodable {"error":{code,message}} body surfaces as an
// *APIError carrying the HTTP status, the machine-readable code and the
// parsed Retry-After header. 503/unavailable responses — admission-control
// sheds and degraded clusters, the two cases the contract marks as
// "rejected before processing, safe to retry" — are retried automatically
// with capped exponential backoff, honouring the server's Retry-After
// hint when present. No other status retries: a 5xx from mid-execution is
// not known to be idempotent, and transport errors may have had side
// effects. Configure with WithRetries(0) to observe every shed (the load
// generator does) or when a layer above owns failover (the cluster router
// does).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"figfusion/internal/api"
)

// DefaultRetries is how many times a 503-rejected request is retried
// before the APIError surfaces to the caller.
const DefaultRetries = 3

// DefaultBackoff is the first retry delay when the server sent no
// Retry-After hint; each further attempt doubles it, capped at
// maxBackoff.
const DefaultBackoff = 50 * time.Millisecond

// maxBackoff caps the exponential retry delay.
const maxBackoff = 2 * time.Second

// APIError is a non-2xx response decoded from the /v1 error envelope.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the envelope's machine-readable code (api.Code*), or ""
	// when the body carried no decodable envelope.
	Code string
	// Message is the envelope's human-readable message.
	Message string
	// RetryAfter is the parsed Retry-After header (0 when absent) — the
	// server's backoff hint on 503 responses.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Code == "" {
		return fmt.Sprintf("HTTP %d", e.Status)
	}
	return fmt.Sprintf("%s: %s (HTTP %d)", e.Code, e.Message, e.Status)
}

// Client calls one figserver (any -role: single, sharded, cluster router,
// or shard node). Construct with New; safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (custom
// transport, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetries bounds automatic 503 retries; 0 disables them so every
// shed surfaces as an *APIError.
func WithRetries(n int) Option {
	return func(c *Client) { c.retries = n }
}

// WithBackoff sets the first retry delay used when the server sent no
// Retry-After hint.
func WithBackoff(d time.Duration) Option {
	return func(c *Client) { c.backoff = d }
}

// New returns a client for the server at base (a URL such as
// http://host:8080; a bare host:port gets the http scheme).
func New(base string, opts ...Option) *Client {
	base = strings.TrimRight(base, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &Client{
		base:    base,
		retries: DefaultRetries,
		backoff: DefaultBackoff,
	}
	for _, o := range opts {
		o(c)
	}
	if c.hc == nil {
		c.hc = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return c
}

// Base returns the normalized base URL.
func (c *Client) Base() string { return c.base }

// Close drops the pooled connections.
func (c *Client) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// Search runs one wire search (POST /v1/search).
func (c *Client) Search(ctx context.Context, req *api.SearchRequest) (*api.WireSearchResponse, error) {
	var resp api.WireSearchResponse
	if err := c.call(ctx, http.MethodPost, "/v1/search", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SearchBatch runs up to api.MaxBatchQueries searches in one round trip
// (POST /v1/search/batch). Results arrive in request order; each entry is
// byte-identical to what Search would have answered for that query alone.
func (c *Client) SearchBatch(ctx context.Context, req *api.BatchSearchRequest) (*api.BatchSearchResponse, error) {
	var resp api.BatchSearchResponse
	if err := c.call(ctx, http.MethodPost, "/v1/search/batch", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Insert ingests one object (POST /v1/objects).
func (c *Client) Insert(ctx context.Context, req *api.InsertRequest) (*api.InsertResponse, error) {
	var resp api.InsertResponse
	if err := c.call(ctx, http.MethodPost, "/v1/objects", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Recommend ranks objects against a user history (POST /v1/recommend).
func (c *Client) Recommend(ctx context.Context, req *api.RecommendRequest) (*api.SearchResponse, error) {
	var resp api.SearchResponse
	if err := c.call(ctx, http.MethodPost, "/v1/recommend", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Object fetches one object by ID (GET /v1/objects/{id}).
func (c *Client) Object(ctx context.Context, id int64) (*api.ObjectResponse, error) {
	var resp api.ObjectResponse
	path := "/v1/objects/" + strconv.FormatInt(id, 10)
	if err := c.call(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Healthz reports server health and corpus size (GET /v1/healthz).
func (c *Client) Healthz(ctx context.Context) (*api.HealthResponse, error) {
	var resp api.HealthResponse
	if err := c.call(ctx, http.MethodGet, "/v1/healthz", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// call runs one request with the retry-on-503 policy: the request body is
// marshalled once and replayed on each attempt.
func (c *Client) call(ctx context.Context, method, path string, in, out interface{}) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: %s %s: encode: %w", method, path, err)
		}
	}
	delay := c.backoff
	for attempt := 0; ; attempt++ {
		err := c.once(ctx, method, path, body, out)
		apiErr, ok := err.(*APIError)
		if !ok || apiErr.Status != http.StatusServiceUnavailable || attempt >= c.retries {
			return err
		}
		// The server rejected the request before processing (shed or
		// degraded): back off and retry, preferring its own hint.
		wait := delay
		if apiErr.RetryAfter > 0 {
			wait = apiErr.RetryAfter
		}
		if wait > maxBackoff {
			wait = maxBackoff
		}
		if err := sleep(ctx, wait); err != nil {
			return err
		}
		if delay *= 2; delay > maxBackoff {
			delay = maxBackoff
		}
	}
}

// once runs a single HTTP attempt.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out interface{}) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out == nil {
			_, err := io.Copy(io.Discard, resp.Body)
			return err
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("client: %s %s: decode: %w", method, path, err)
		}
		return nil
	}
	apiErr := &APIError{Status: resp.StatusCode}
	if ra := resp.Header.Get(api.RetryAfterHeader); ra != "" {
		if secs, perr := strconv.Atoi(ra); perr == nil && secs >= 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var envelope api.ErrorResponse
	if jerr := json.Unmarshal(raw, &envelope); jerr == nil && envelope.Error.Code != "" {
		apiErr.Code = envelope.Error.Code
		apiErr.Message = envelope.Error.Message
	}
	return apiErr
}

// sleep waits d or until ctx is done.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
