// Package obs is the dependency-free observability core of the serving
// stack: atomic counters and gauges, fixed-bucket latency histograms with
// quantile snapshots, a named registry the HTTP layer exposes at
// /v1/metrics, plus per-query traces and a bounded slow-query log (see
// trace.go).
//
// Two properties shape the API:
//
//   - Hot-path cost. Instrumented code runs inside Search, so recording is
//     a handful of atomic adds into preallocated slots — no locks, no maps,
//     no allocation. Histogram buckets are fixed at construction;
//     Observe is a binary search over at most a few dozen bounds plus two
//     atomic adds.
//   - Nil safety. Every recording method is a no-op on a nil receiver, and
//     a nil *Registry hands out nil instruments. Library users who never
//     attach a registry therefore pay only an untaken branch; the serving
//     binaries attach one by default.
//
// Snapshots are deterministic: instruments are reported in sorted name
// order and quantiles are a pure function of the recorded counts, so two
// snapshots of the same state are byte-identical when marshalled.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil Counter ignores all updates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value set by its owner. The zero value is
// ready to use; a nil Gauge ignores all updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the current value by delta (gauges may go down).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBuckets are the histogram bounds the registry hands out:
// powers of two from 1µs to ~8.4s, which brackets everything from a single
// posting lookup to a pathological scatter-gather straggler. 24 bounds
// keep a histogram at ~200 bytes of preallocated slots.
func DefaultLatencyBuckets() []time.Duration {
	bounds := make([]time.Duration, 24)
	for i := range bounds {
		bounds[i] = time.Microsecond << i
	}
	return bounds
}

// Histogram is a fixed-bucket latency histogram. Buckets are cumulative-
// style upper bounds fixed at construction; observations land in the first
// bucket whose bound is >= the value, or in the implicit overflow bucket.
// The zero value is unusable; construct through a Registry (or
// NewHistogram). A nil Histogram ignores all updates.
type Histogram struct {
	bounds []int64 // nanoseconds, ascending
	counts []atomic.Uint64
	sum    atomic.Int64
	count  atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending bucket bounds
// plus an implicit overflow bucket.
func NewHistogram(bounds []time.Duration) *Histogram {
	h := &Histogram{bounds: make([]int64, len(bounds))}
	for i, b := range bounds {
		h.bounds[i] = int64(b)
	}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	// Binary search for the first bound >= ns; len(bounds) is overflow.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] >= ns {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(ns)
	h.count.Add(1)
}

// HistogramSnapshot is one histogram's point-in-time summary. Quantiles
// are upper-bound estimates: the bound of the bucket the quantile falls in
// (the overflow bucket reports the largest finite bound).
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	SumMs   float64           `json:"sumMs"`
	MeanMs  float64           `json:"meanMs"`
	P50Ms   float64           `json:"p50Ms"`
	P95Ms   float64           `json:"p95Ms"`
	P99Ms   float64           `json:"p99Ms"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// HistogramBucket is one non-empty bucket: its upper bound and count.
type HistogramBucket struct {
	LeMs  float64 `json:"leMs"` // upper bound; the overflow bucket reports +Inf as 0 with Inf flag avoided: see Snapshot
	Count uint64  `json:"count"`
}

// Snapshot summarises the histogram. Counts are read bucket by bucket
// without a lock, so a snapshot racing observations may be off by the
// in-flight handful — fine for monitoring, and each bucket is itself
// consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{Count: total, SumMs: float64(h.sum.Load()) / 1e6}
	if total == 0 {
		return s
	}
	s.MeanMs = s.SumMs / float64(total)
	s.P50Ms = h.quantile(counts, total, 0.50)
	s.P95Ms = h.quantile(counts, total, 0.95)
	s.P99Ms = h.quantile(counts, total, 0.99)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		le := float64(0)
		if i < len(h.bounds) {
			le = float64(h.bounds[i]) / 1e6
		} else {
			// Overflow bucket: report the largest finite bound (JSON has
			// no +Inf); Count landing here means "beyond the last bound".
			le = float64(h.bounds[len(h.bounds)-1]) / 1e6
		}
		s.Buckets = append(s.Buckets, HistogramBucket{LeMs: le, Count: c})
	}
	return s
}

// quantile returns the upper bound (ms) of the bucket holding the q-th
// quantile observation.
func (h *Histogram) quantile(counts []uint64, total uint64, q float64) float64 {
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range counts {
		seen += c
		if seen > rank {
			if i < len(h.bounds) {
				return float64(h.bounds[i]) / 1e6
			}
			return float64(h.bounds[len(h.bounds)-1]) / 1e6
		}
	}
	return float64(h.bounds[len(h.bounds)-1]) / 1e6
}

// Registry is a named collection of instruments. Lookup is
// create-or-return, so independent subsystems sharing a registry converge
// on the same instrument for the same name. A nil *Registry hands out nil
// instruments (no-ops), which is the library-user mode. Safe for
// concurrent use; lookups take a mutex, so instruments should be resolved
// once at construction, not per operation.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	funcs      map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		funcs:      make(map[string]func() int64),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram (default latency buckets),
// creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(DefaultLatencyBuckets())
		r.histograms[name] = h
	}
	return h
}

// SetHistogram registers (or replaces) a pre-existing histogram under
// name. Subsystems that must record before any registry is attached — the
// cluster's per-node latency histograms feed hedging delays, so they are
// always on — construct their own and publish them here when observability
// is enabled.
func (r *Registry) SetHistogram(name string, h *Histogram) {
	if r == nil || h == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.histograms[name] = h
}

// Func registers a lazily evaluated gauge: fn runs at snapshot time.
// Re-registering a name replaces the previous function, which makes
// registration idempotent for subsystems constructed more than once over
// shared state (e.g. one engine per shard sharing one scorer).
func (r *Registry) Func(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Snapshot is a point-in-time copy of every registered instrument, with
// func gauges folded into Gauges. Maps marshal with sorted keys, so the
// JSON form is deterministic for fixed instrument state.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// instruments copies the instrument maps under the registry lock so
// Snapshot can read them — and evaluate func gauges — without holding it.
func (r *Registry) instruments() (map[string]*Counter, map[string]*Gauge, map[string]*Histogram, map[string]func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		histograms[n] = h
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for n, fn := range r.funcs {
		funcs[n] = fn
	}
	return counters, gauges, histograms, funcs
}

// Snapshot reads every instrument. Func gauges are evaluated outside the
// registry lock (they may read other locked state).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	counters, gauges, histograms, funcs := r.instruments()
	snap := Snapshot{
		Counters:   make(map[string]uint64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)+len(funcs)),
		Histograms: make(map[string]HistogramSnapshot, len(histograms)),
	}
	for n, c := range counters {
		snap.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		snap.Gauges[n] = g.Value()
	}
	for n, fn := range funcs {
		snap.Gauges[n] = fn()
	}
	for n, h := range histograms {
		snap.Histograms[n] = h.Snapshot()
	}
	return snap
}

// Names returns every registered instrument name, sorted — diagnostics
// and tests.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms)+len(r.funcs))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	for n := range r.funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
