package obs

import (
	"sync"
	"time"
)

// Stage is one phase of a query's life. The retrieval engine records the
// four pipeline stages of an indexed search; the scan path has no gather
// and the TA path folds its threshold merge into StageMerge.
type Stage int

const (
	// StagePrepare is the query-side work: FIG construction, clique
	// enumeration, MRF compile.
	StagePrepare Stage = iota
	// StageGather is candidate generation: posting-list lookup and the
	// multi-way candidate merge (per-shard in sharded mode).
	StageGather
	// StageScore is per-candidate MRF scoring.
	StageScore
	// StageMerge is the top-k fold: partial-heap merge or TA threshold
	// merge.
	StageMerge
	// NumStages bounds per-stage arrays.
	NumStages
)

// String names the stage for snapshots and metric suffixes.
func (s Stage) String() string {
	switch s {
	case StagePrepare:
		return "prepare"
	case StageGather:
		return "gather"
	case StageScore:
		return "score"
	case StageMerge:
		return "merge"
	}
	return "unknown"
}

// Query paths a trace can record.
const (
	PathIndex = "index" // exact indexed search (Algorithm 1 candidates, full MRF score)
	PathTA    = "ta"    // literal Algorithm 1 threshold merge
	PathScan  = "scan"  // sequential full-corpus scan
)

// QueryTrace accumulates one query's stage timings. It is a plain value
// the engine keeps on the stack of the search call — no allocation, no
// locking — and hands to SlowLog.Record / metric sinks when the query
// finishes. All methods are nil-safe so the disabled path pays only the
// nil check.
type QueryTrace struct {
	Path       string
	Candidates int
	// Pruning effectiveness of the block-max layer: candidates the
	// admission gate let through / skipped, and posting blocks the lazy
	// TA merge never materialised. All zero when pruning is off.
	PruneAdmitted int
	PruneSkipped  int
	PruneBlocks   int
	Stages        [NumStages]time.Duration
	Total         time.Duration
	start         time.Time
}

// NewTrace starts a trace for one query on the given path.
func NewTrace(path string) *QueryTrace {
	return &QueryTrace{Path: path, start: time.Now()}
}

// Begin marks the start of a stage span. On a nil trace it returns the
// zero time without consulting the clock.
func (t *QueryTrace) Begin() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// End accrues the span since start into the given stage. Stages may be
// ended multiple times; spans accumulate (the prepare stage of an indexed
// search is two spans split around candidate gathering).
func (t *QueryTrace) End(s Stage, start time.Time) {
	if t == nil {
		return
	}
	t.Stages[s] += time.Since(start)
}

// AddPruneCandidates accrues admission-gate outcomes: candidates scored
// versus skipped because their block-max bound could not reach the k-th
// heap score. Accrues (rather than sets) so the quantized two-pass path
// can report both passes.
func (t *QueryTrace) AddPruneCandidates(admitted, skipped int) {
	if t == nil {
		return
	}
	t.PruneAdmitted += admitted
	t.PruneSkipped += skipped
}

// AddPruneBlocks accrues posting blocks the lazy TA merge skipped —
// blocks whose upper bound never reached the merge frontier before the
// threshold terminated.
func (t *QueryTrace) AddPruneBlocks(n int) {
	if t == nil {
		return
	}
	t.PruneBlocks += n
}

// SetCandidates records how many candidates received the full score.
func (t *QueryTrace) SetCandidates(n int) {
	if t == nil {
		return
	}
	t.Candidates = n
}

// Finish stamps the wall-clock total.
func (t *QueryTrace) Finish() {
	if t == nil {
		return
	}
	t.Total = time.Since(t.start)
}

// SlowQuery is one slow-log entry: a finished trace flattened for JSON.
type SlowQuery struct {
	Path       string  `json:"path"`
	Candidates int     `json:"candidates"`
	TotalMs    float64 `json:"totalMs"`
	PrepareMs  float64 `json:"prepareMs"`
	GatherMs   float64 `json:"gatherMs"`
	ScoreMs    float64 `json:"scoreMs"`
	MergeMs    float64 `json:"mergeMs"`
}

// SlowLog keeps the most recent queries slower than a threshold in a
// bounded ring. Record is called at the end of every instrumented query,
// so the fast path is one duration compare; only actually-slow queries
// take the mutex. A nil SlowLog drops everything.
type SlowLog struct {
	threshold time.Duration

	mu      sync.Mutex
	entries []SlowQuery
	next    int
	filled  bool
	total   uint64
}

// NewSlowLog returns a log keeping the last capacity queries at or above
// threshold. Capacity is clamped to at least 1.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{threshold: threshold, entries: make([]SlowQuery, capacity)}
}

// Threshold returns the slow-query cutoff.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Record files a finished trace if it crossed the threshold.
func (l *SlowLog) Record(t *QueryTrace) {
	if l == nil || t == nil || t.Total < l.threshold {
		return
	}
	sq := SlowQuery{
		Path:       t.Path,
		Candidates: t.Candidates,
		TotalMs:    float64(t.Total) / 1e6,
		PrepareMs:  float64(t.Stages[StagePrepare]) / 1e6,
		GatherMs:   float64(t.Stages[StageGather]) / 1e6,
		ScoreMs:    float64(t.Stages[StageScore]) / 1e6,
		MergeMs:    float64(t.Stages[StageMerge]) / 1e6,
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries[l.next] = sq
	l.next++
	if l.next == len(l.entries) {
		l.next = 0
		l.filled = true
	}
	l.total++
}

// Snapshot returns the retained slow queries, most recent first, plus the
// total number ever recorded (retained or evicted).
func (l *SlowLog) Snapshot() ([]SlowQuery, uint64) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.filled {
		n = len(l.entries)
	}
	out := make([]SlowQuery, 0, n)
	for i := 0; i < n; i++ {
		idx := l.next - 1 - i
		if idx < 0 {
			idx += len(l.entries)
		}
		out = append(out, l.entries[idx])
	}
	return out, l.total
}
