package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the bucket placement rule: an
// observation lands in the first bucket whose bound is >= the value, so a
// value exactly on a bound belongs to that bound's bucket, one nanosecond
// more spills into the next, and anything past the last bound lands in
// the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []time.Duration{time.Microsecond, 10 * time.Microsecond, time.Millisecond}
	h := NewHistogram(bounds)
	cases := []struct {
		d    time.Duration
		want int // bucket index; len(bounds) = overflow
	}{
		{0, 0},
		{-5 * time.Second, 0}, // negative clamps to zero
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{10 * time.Microsecond, 1},
		{10*time.Microsecond + 1, 2},
		{time.Millisecond, 2},
		{time.Millisecond + 1, 3},
		{time.Hour, 3},
	}
	for _, tc := range cases {
		before := make([]uint64, len(h.counts))
		for i := range h.counts {
			before[i] = h.counts[i].Load()
		}
		h.Observe(tc.d)
		for i := range h.counts {
			delta := h.counts[i].Load() - before[i]
			want := uint64(0)
			if i == tc.want {
				want = 1
			}
			if delta != want {
				t.Errorf("Observe(%v): bucket %d delta = %d, want %d", tc.d, i, delta, want)
			}
		}
	}
}

// TestHistogramSnapshotQuantiles checks the quantile estimate against a
// hand-computable distribution: 90 fast observations and 10 slow ones.
func TestHistogramSnapshotQuantiles(t *testing.T) {
	bounds := []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond}
	h := NewHistogram(bounds)
	for i := 0; i < 90; i++ {
		h.Observe(500 * time.Microsecond) // bucket 0, bound 1ms
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond) // bucket 2, bound 100ms
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.P50Ms != 1 {
		t.Errorf("P50Ms = %v, want 1 (fast bucket bound)", s.P50Ms)
	}
	if s.P95Ms != 100 {
		t.Errorf("P95Ms = %v, want 100 (slow bucket bound)", s.P95Ms)
	}
	if s.P99Ms != 100 {
		t.Errorf("P99Ms = %v, want 100", s.P99Ms)
	}
	wantSum := 90*0.5 + 10*50.0
	if s.SumMs != wantSum {
		t.Errorf("SumMs = %v, want %v", s.SumMs, wantSum)
	}
	if len(s.Buckets) != 2 {
		t.Fatalf("Buckets = %+v, want the two non-empty buckets", s.Buckets)
	}
	if s.Buckets[0].LeMs != 1 || s.Buckets[0].Count != 90 {
		t.Errorf("bucket[0] = %+v", s.Buckets[0])
	}
	if s.Buckets[1].LeMs != 100 || s.Buckets[1].Count != 10 {
		t.Errorf("bucket[1] = %+v", s.Buckets[1])
	}
}

// TestHistogramOverflowBucket: observations past the last bound are
// counted, and the overflow bucket reports the largest finite bound.
func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond})
	h.Observe(time.Minute)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.P50Ms != 1 {
		t.Errorf("P50Ms = %v, want largest finite bound 1", s.P50Ms)
	}
	if len(s.Buckets) != 1 || s.Buckets[0].LeMs != 1 || s.Buckets[0].Count != 1 {
		t.Errorf("Buckets = %+v", s.Buckets)
	}
}

// TestConcurrentRecording hammers one registry's instruments from many
// goroutines (this is the -race test) and checks the totals add up.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared.counter")
			g := r.Gauge("shared.gauge")
			h := r.Histogram("shared.latency")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					_ = r.Snapshot() // snapshots race observations by design
				}
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap.Counters["shared.counter"]; got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := snap.Gauges["shared.gauge"]; got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := snap.Histograms["shared.latency"].Count; got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestSnapshotDeterminism: two snapshots of the same registry state
// marshal to byte-identical JSON.
func TestSnapshotDeterminism(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.requests").Add(7)
	r.Counter("a.requests").Add(3)
	r.Gauge("z.depth").Set(-2)
	r.Func("cache.hits", func() int64 { return 42 })
	h := r.Histogram("a.latency")
	for i := 0; i < 50; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	first, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Errorf("snapshots differ:\n%s\n%s", first, second)
	}
}

// TestRegistryCreateOrReturn: the same name yields the same instrument,
// and Func re-registration replaces the function (last wins).
func TestRegistryCreateOrReturn(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("Counter not idempotent")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Error("Gauge not idempotent")
	}
	if r.Histogram("x") != r.Histogram("x") {
		t.Error("Histogram not idempotent")
	}
	r.Func("f", func() int64 { return 1 })
	r.Func("f", func() int64 { return 2 })
	if got := r.Snapshot().Gauges["f"]; got != 2 {
		t.Errorf("func gauge = %d, want last-registered 2", got)
	}
	want := []string{"f", "x", "x", "x"}
	got := r.Names()
	if len(got) != len(want) {
		t.Fatalf("Names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}
}

// TestNilSafety: every recording method must be a no-op on nil receivers,
// and a nil registry hands out nil instruments.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out a real instrument")
	}
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(time.Second)
	r.Func("f", func() int64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Error("nil instruments recorded something")
	}
	if s := r.Snapshot(); s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Error("nil registry snapshot not empty")
	}
	if r.Names() != nil {
		t.Error("nil registry has names")
	}

	var tr *QueryTrace
	if !tr.Begin().IsZero() {
		t.Error("nil trace Begin consulted the clock")
	}
	tr.End(StageScore, time.Now())
	tr.SetCandidates(5)
	tr.Finish()

	var l *SlowLog
	l.Record(NewTrace(PathIndex))
	if q, n := l.Snapshot(); q != nil || n != 0 {
		t.Error("nil slow log retained entries")
	}
	if l.Threshold() != 0 {
		t.Error("nil slow log threshold")
	}
}

// TestSlowLog covers the threshold filter, ring eviction, most-recent-
// first ordering, and the lifetime total.
func TestSlowLog(t *testing.T) {
	l := NewSlowLog(3, 10*time.Millisecond)
	fast := &QueryTrace{Path: PathIndex, Total: time.Millisecond}
	l.Record(fast)
	if q, n := l.Snapshot(); len(q) != 0 || n != 0 {
		t.Fatalf("fast query recorded: %v, %d", q, n)
	}
	for i := 1; i <= 5; i++ {
		tr := &QueryTrace{Path: PathIndex, Candidates: i, Total: time.Duration(10+i) * time.Millisecond}
		tr.Stages[StageScore] = time.Duration(i) * time.Millisecond
		l.Record(tr)
	}
	q, n := l.Snapshot()
	if n != 5 {
		t.Errorf("total = %d, want 5", n)
	}
	if len(q) != 3 {
		t.Fatalf("retained = %d, want capacity 3", len(q))
	}
	for i, want := range []int{5, 4, 3} { // most recent first
		if q[i].Candidates != want {
			t.Errorf("entry %d candidates = %d, want %d", i, q[i].Candidates, want)
		}
	}
	if q[0].TotalMs != 15 || q[0].ScoreMs != 5 {
		t.Errorf("entry 0 = %+v", q[0])
	}
}

// TestTraceAccumulation: ending a stage twice accumulates both spans.
func TestTraceAccumulation(t *testing.T) {
	tr := NewTrace(PathTA)
	base := time.Now().Add(-20 * time.Millisecond)
	tr.End(StagePrepare, base)
	tr.End(StagePrepare, base)
	if tr.Stages[StagePrepare] < 40*time.Millisecond {
		t.Errorf("prepare = %v, want >= 40ms (two 20ms spans)", tr.Stages[StagePrepare])
	}
	tr.SetCandidates(9)
	tr.Finish()
	if tr.Total <= 0 || tr.Candidates != 9 || tr.Path != PathTA {
		t.Errorf("trace = %+v", tr)
	}
}

// TestStageStrings pins the metric-suffix names.
func TestStageStrings(t *testing.T) {
	want := map[Stage]string{StagePrepare: "prepare", StageGather: "gather", StageScore: "score", StageMerge: "merge", NumStages: "unknown"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
}

// TestDefaultLatencyBuckets: 24 power-of-two bounds starting at 1µs.
func TestDefaultLatencyBuckets(t *testing.T) {
	b := DefaultLatencyBuckets()
	if len(b) != 24 {
		t.Fatalf("len = %d", len(b))
	}
	if b[0] != time.Microsecond {
		t.Errorf("b[0] = %v", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] != 2*b[i-1] {
			t.Errorf("b[%d] = %v, want %v", i, b[i], 2*b[i-1])
		}
	}
}
