package baselines

import "figfusion/internal/media"

// TP is the tensor-product early-fusion baseline of Basilico & Hofmann [3]:
// a joint kernel is formed as the tensor product of per-type kernels, which
// for object–object similarity multiplies the per-modality cosine kernels.
// As the paper notes, the method "assumes that all feature dimensions are
// correlated with each other, and do[es] not carry out any prune process":
// every modality gates every other, so one noisy modality (typically the
// visual one) drags the joint similarity down — the behaviour behind TP's
// weak showing in the evaluation.
type TP struct {
	corpus *media.Corpus
	// kinds are the modalities actually populated in the corpus; empty
	// modalities are excluded from the product (they carry no kernel).
	kinds []media.Kind
	// eps regularises the product so a single empty modality does not
	// annihilate the score outright (the kernel would otherwise be zero
	// for most pairs and produce no ranking at all).
	eps float64
}

// NewTP builds the tensor-product scorer over the corpus's populated
// modalities.
func NewTP(corpus *media.Corpus) *TP {
	var present [media.NumKinds]bool
	for fid := media.FID(0); int(fid) < corpus.Dict.Len(); fid++ {
		present[corpus.KindOf(fid)] = true
	}
	t := &TP{corpus: corpus, eps: 0.01}
	for kind := media.Kind(0); int(kind) < media.NumKinds; kind++ {
		if present[kind] {
			t.kinds = append(t.kinds, kind)
		}
	}
	return t
}

// Name implements Scorer.
func (t *TP) Name() string { return "TP" }

// Score implements Scorer: Π_kind (cos_kind(q, o) + ε) over the populated
// modalities, rescaled to remove the ε^m floor so disjoint objects score 0.
func (t *TP) Score(q, o *media.Object) float64 {
	prod := 1.0
	floor := 1.0
	for _, kind := range t.kinds {
		prod *= kindCosine(t.corpus, q, o, kind) + t.eps
		floor *= t.eps
	}
	s := prod - floor
	if s < 0 {
		return 0
	}
	return s
}
