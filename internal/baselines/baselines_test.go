package baselines

import (
	"math"
	"math/rand"
	"testing"

	"figfusion/internal/dataset"
	"figfusion/internal/media"
)

func testData(t testing.TB) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumObjects = 200
	cfg.NumTopics = 5
	cfg.TagsPerTopic = 8
	cfg.NoiseTags = 24
	cfg.UsersPerTopic = 8
	cfg.VisualVocab = 12
	cfg.VocabTrainImages = 40
	cfg.ImageBlocks = 2
	cfg.KMeansIters = 8
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func precisionAt(t *testing.T, d *dataset.Dataset, s Scorer, n int) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	queries := d.SampleQueries(8, rng)
	var total float64
	for _, qid := range queries {
		q := d.Corpus.Object(qid)
		results := Search(s, d.Corpus, q, n, qid)
		rel := 0
		for _, it := range results {
			if dataset.Relevant(q, d.Corpus.Object(it.ID)) {
				rel++
			}
		}
		if len(results) > 0 {
			total += float64(rel) / float64(len(results))
		}
	}
	return total / float64(len(queries))
}

func TestKindCosine(t *testing.T) {
	c := media.NewCorpus()
	tf := media.Feature{Kind: media.Text, Name: "cat"}
	tg := media.Feature{Kind: media.Text, Name: "dog"}
	uf := media.Feature{Kind: media.User, Name: "u1"}
	a, err := c.Add([]media.Feature{tf, uf}, []int{1, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Add([]media.Feature{tf, tg}, []int{1, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Text cosine: shared "cat": 1/(1·sqrt(2)).
	want := 1 / math.Sqrt(2)
	if got := kindCosine(c, a, b, media.Text); math.Abs(got-want) > 1e-12 {
		t.Errorf("text cosine = %v, want %v", got, want)
	}
	// User cosine: b has no user features → 0.
	if got := kindCosine(c, a, b, media.User); got != 0 {
		t.Errorf("user cosine = %v, want 0", got)
	}
	// Symmetry.
	if kindCosine(c, a, b, media.Text) != kindCosine(c, b, a, media.Text) {
		t.Error("kindCosine not symmetric")
	}
	// Self-similarity 1 per populated kind.
	if got := kindCosine(c, a, a, media.Text); math.Abs(got-1) > 1e-12 {
		t.Errorf("self cosine = %v", got)
	}
}

func TestLSATrainAndScore(t *testing.T) {
	d := testData(t)
	l, err := TrainLSA(d.Corpus, LSAConfig{Rank: 16, Iters: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if l.Name() != "LSA" {
		t.Errorf("Name = %q", l.Name())
	}
	if l.Rank() != 16 {
		t.Errorf("Rank = %d", l.Rank())
	}
	sig := l.Sigma()
	for j, s := range sig {
		if s < 0 || math.IsNaN(s) {
			t.Errorf("sigma[%d] = %v", j, s)
		}
	}
	// Self score ≈ 1.
	q := d.Corpus.Object(0)
	if got := l.Score(q, q); math.Abs(got-1) > 1e-6 {
		t.Errorf("self score = %v, want 1", got)
	}
	// Same-topic beats average cross-topic.
	p := precisionAt(t, d, l, 10)
	if p < 0.3 {
		t.Errorf("LSA P@10 = %v, implausibly low for planted topics", p)
	}
}

func TestLSAValidation(t *testing.T) {
	d := testData(t)
	if _, err := TrainLSA(d.Corpus, LSAConfig{Rank: 0, Iters: 5}); err == nil {
		t.Error("want error for rank 0")
	}
	if _, err := TrainLSA(d.Corpus, LSAConfig{Rank: 4, Iters: 0}); err == nil {
		t.Error("want error for iters 0")
	}
	if _, err := TrainLSA(media.NewCorpus(), DefaultLSAConfig()); err == nil {
		t.Error("want error for empty corpus")
	}
}

func TestLSARankClamped(t *testing.T) {
	c := media.NewCorpus()
	for i := 0; i < 3; i++ {
		if _, err := c.Add([]media.Feature{{Kind: media.Text, Name: string(rune('a' + i))}}, []int{1}, 0); err != nil {
			t.Fatal(err)
		}
	}
	l, err := TrainLSA(c, LSAConfig{Rank: 50, Iters: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if l.Rank() != 3 {
		t.Errorf("Rank = %d, want clamp to 3", l.Rank())
	}
}

func TestLSAEmbedExternalObject(t *testing.T) {
	d := testData(t)
	l, err := TrainLSA(d.Corpus, LSAConfig{Rank: 12, Iters: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	src := d.Corpus.Object(3)
	fcs := make([]media.FeatureCount, len(src.Feats))
	for i, f := range src.Feats {
		fcs[i] = media.FeatureCount{FID: f, Count: src.Counts[i]}
	}
	clone := media.NewObject(99999, fcs, 0)
	// The clone must score ≈1 against its source.
	if got := l.Score(clone, src); math.Abs(got-1) > 1e-6 {
		t.Errorf("clone score = %v, want ≈1", got)
	}
	// An object with only unknown features embeds to zero.
	alien := media.NewObject(99998, []media.FeatureCount{{FID: media.FID(d.Corpus.Dict.Len() + 5), Count: 1}}, 0)
	emb := l.Embed(alien)
	for _, x := range emb {
		if x != 0 {
			t.Fatalf("alien embedding non-zero: %v", emb)
		}
	}
}

func TestTPScore(t *testing.T) {
	d := testData(t)
	tp := NewTP(d.Corpus)
	if tp.Name() != "TP" {
		t.Errorf("Name = %q", tp.Name())
	}
	q := d.Corpus.Object(0)
	// Self-similarity near (1+ε)³ − ε³.
	self := tp.Score(q, q)
	if self < 0.9 {
		t.Errorf("self TP score = %v", self)
	}
	// Disjoint objects score ~0: construct one from unique features.
	c2 := d.Corpus
	alien := media.NewObject(88888, []media.FeatureCount{{FID: media.FID(c2.Dict.Len() + 1), Count: 1}}, 0)
	if got := tp.Score(q, alien); got != 0 {
		t.Errorf("disjoint TP score = %v, want 0", got)
	}
	// TP still ranks same-topic objects above random.
	p := precisionAt(t, d, tp, 10)
	if p < 0.25 {
		t.Errorf("TP P@10 = %v, implausibly low", p)
	}
}

func TestRBTrainAndScore(t *testing.T) {
	d := testData(t)
	rng := rand.New(rand.NewSource(3))
	queries := d.SampleQueries(10, rng)
	rb, err := TrainRB(d.Corpus, queries, dataset.Relevant, DefaultRBConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rb.Name() != "RB" {
		t.Errorf("Name = %q", rb.Name())
	}
	if rb.Rounds() == 0 {
		t.Fatal("no weak rankers")
	}
	p := precisionAt(t, d, rb, 10)
	if p < 0.3 {
		t.Errorf("RB P@10 = %v, implausibly low", p)
	}
}

func TestRBValidation(t *testing.T) {
	d := testData(t)
	if _, err := TrainRB(d.Corpus, nil, dataset.Relevant, DefaultRBConfig()); err == nil {
		t.Error("want error for no queries")
	}
	bad := DefaultRBConfig()
	bad.Rounds = 0
	if _, err := TrainRB(d.Corpus, []media.ObjectID{0}, dataset.Relevant, bad); err == nil {
		t.Error("want error for zero rounds")
	}
	// Degenerate relevance (nothing relevant) → no crucial pairs.
	never := func(q, o *media.Object) bool { return false }
	if _, err := TrainRB(d.Corpus, []media.ObjectID{0, 1}, never, DefaultRBConfig()); err == nil {
		t.Error("want error for degenerate relevance")
	}
}

func TestSearchAndSearchAmong(t *testing.T) {
	d := testData(t)
	tp := NewTP(d.Corpus)
	q := d.Corpus.Object(5)
	all := Search(tp, d.Corpus, q, 5, q.ID)
	if len(all) == 0 {
		t.Fatal("no results")
	}
	for _, it := range all {
		if it.ID == q.ID {
			t.Error("excluded query returned")
		}
	}
	// SearchAmong restricted to the full ID set matches Search-without-
	// exclusion semantics for the same candidates.
	cands := []media.ObjectID{all[0].ID, all[1].ID}
	among := SearchAmong(tp, d.Corpus, q, cands, 5)
	if len(among) != 2 {
		t.Fatalf("among = %v", among)
	}
	if among[0].ID != all[0].ID {
		t.Errorf("best candidate = %v, want %v", among[0], all[0])
	}
}

func TestAllBaselinesPositiveScoresOnly(t *testing.T) {
	d := testData(t)
	l, err := TrainLSA(d.Corpus, LSAConfig{Rank: 8, Iters: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	rb, err := TrainRB(d.Corpus, d.SampleQueries(6, rng), dataset.Relevant, DefaultRBConfig())
	if err != nil {
		t.Fatal(err)
	}
	scorers := []Scorer{l, NewTP(d.Corpus), rb}
	for _, s := range scorers {
		for i := 0; i < 20; i++ {
			q := d.Corpus.Object(media.ObjectID(i))
			o := d.Corpus.Object(media.ObjectID((i * 7) % d.Corpus.Len()))
			if v := s.Score(q, o); v < 0 || math.IsNaN(v) {
				t.Errorf("%s score = %v", s.Name(), v)
			}
		}
	}
}

func BenchmarkLSAScore(b *testing.B) {
	d := testData(b)
	l, err := TrainLSA(d.Corpus, LSAConfig{Rank: 16, Iters: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	q := d.Corpus.Object(0)
	o := d.Corpus.Object(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Score(q, o)
	}
}

func BenchmarkTPScore(b *testing.B) {
	d := testData(b)
	tp := NewTP(d.Corpus)
	q := d.Corpus.Object(0)
	o := d.Corpus.Object(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp.Score(q, o)
	}
}
