package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"figfusion/internal/media"
)

// LSA is the early-fusion baseline of [22, 23]: all feature types are
// stacked into one term–object matrix A (TF-IDF weighted), a rank-r
// truncated SVD A ≈ U Σ Vᵀ maps objects into a unified latent space, and
// similarity is the cosine between latent embeddings. Queries (and, for
// consistency, database objects) are folded in with v = Σ⁻¹ Uᵀ x.
//
// The SVD is computed from scratch by subspace (orthogonal) iteration on
// the sparse matrix: V ← orth(Aᵀ(A V)), which costs O(nnz·r) per sweep —
// the "extremely high computational cost for a large scale database" the
// paper attributes to global-statistics early fusion shows up here as the
// training cost.
type LSA struct {
	corpus *media.Corpus
	rank   int
	idf    []float64   // FID -> idf weight
	u      [][]float64 // FID -> r-dim left singular row
	sigma  []float64   // r singular values
	docEmb [][]float64 // ObjectID -> normalized r-dim embedding
}

// LSAConfig controls training.
type LSAConfig struct {
	// Rank is the latent dimensionality r.
	Rank int
	// Iters is the number of subspace-iteration sweeps.
	Iters int
	// Seed makes training reproducible.
	Seed int64
}

// DefaultLSAConfig returns a sensible small-rank setup.
func DefaultLSAConfig() LSAConfig { return LSAConfig{Rank: 24, Iters: 12, Seed: 1} }

// TrainLSA factorises the corpus matrix.
func TrainLSA(corpus *media.Corpus, cfg LSAConfig) (*LSA, error) {
	n := corpus.Len()
	nf := corpus.Dict.Len()
	if cfg.Rank < 1 {
		return nil, fmt.Errorf("lsa: rank %d", cfg.Rank)
	}
	if cfg.Iters < 1 {
		return nil, fmt.Errorf("lsa: iters %d", cfg.Iters)
	}
	if n == 0 || nf == 0 {
		return nil, fmt.Errorf("lsa: empty corpus")
	}
	r := cfg.Rank
	if r > n {
		r = n
	}
	if r > nf {
		r = nf
	}
	l := &LSA{corpus: corpus, rank: r, idf: make([]float64, nf)}
	for fid := 0; fid < nf; fid++ {
		df := corpus.DocFreq(media.FID(fid))
		l.idf[fid] = math.Log(1 + float64(n)/float64(1+df))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// V: n×r with orthonormal columns.
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, r)
		for j := range v[i] {
			v[i][j] = rng.NormFloat64()
		}
	}
	orthonormalize(v, r)
	w := make([][]float64, nf) // A·V, feature space
	for i := range w {
		w[i] = make([]float64, r)
	}
	for iter := 0; iter < cfg.Iters; iter++ {
		l.multiplyAV(v, w)
		l.multiplyAtW(w, v)
		orthonormalize(v, r)
	}
	// Final pass: U and Σ from W = A·V.
	l.multiplyAV(v, w)
	l.sigma = make([]float64, r)
	for j := 0; j < r; j++ {
		var norm float64
		for i := range w {
			norm += w[i][j] * w[i][j]
		}
		l.sigma[j] = math.Sqrt(norm)
	}
	l.u = w
	for i := range l.u {
		for j := 0; j < r; j++ {
			if l.sigma[j] > 0 {
				l.u[i][j] /= l.sigma[j]
			}
		}
	}
	// Embed all database objects by fold-in so query and corpus live in
	// the same space.
	l.docEmb = make([][]float64, n)
	for i, o := range corpus.Objects {
		l.docEmb[i] = l.Embed(o)
	}
	return l, nil
}

// multiplyAV computes w = A·v where A[f,o] = count·idf.
func (l *LSA) multiplyAV(v, w [][]float64) {
	for i := range w {
		for j := range w[i] {
			w[i][j] = 0
		}
	}
	for _, o := range l.corpus.Objects {
		vo := v[o.ID]
		for i, fid := range o.Feats {
			a := float64(o.Counts[i]) * l.idf[fid]
			wf := w[fid]
			for j := range wf {
				wf[j] += a * vo[j]
			}
		}
	}
}

// multiplyAtW computes v = Aᵀ·w.
func (l *LSA) multiplyAtW(w, v [][]float64) {
	for i := range v {
		for j := range v[i] {
			v[i][j] = 0
		}
	}
	for _, o := range l.corpus.Objects {
		vo := v[o.ID]
		for i, fid := range o.Feats {
			a := float64(o.Counts[i]) * l.idf[fid]
			wf := w[fid]
			for j := range vo {
				vo[j] += a * wf[j]
			}
		}
	}
}

// orthonormalize applies modified Gram–Schmidt to the first r columns of
// the row-major matrix m (rows = vectors' coordinates).
func orthonormalize(m [][]float64, r int) {
	for j := 0; j < r; j++ {
		// Subtract projections onto previous columns.
		for p := 0; p < j; p++ {
			var dot float64
			for i := range m {
				dot += m[i][j] * m[i][p]
			}
			for i := range m {
				m[i][j] -= dot * m[i][p]
			}
		}
		var norm float64
		for i := range m {
			norm += m[i][j] * m[i][j]
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			// Degenerate column: reseed deterministically.
			for i := range m {
				m[i][j] = math.Sin(float64(i*31 + j + 1))
			}
			var n2 float64
			for i := range m {
				n2 += m[i][j] * m[i][j]
			}
			norm = math.Sqrt(n2)
		}
		for i := range m {
			m[i][j] /= norm
		}
	}
}

// Rank returns the latent dimensionality.
func (l *LSA) Rank() int { return l.rank }

// Sigma returns the singular values, largest first (up to iteration
// convergence).
func (l *LSA) Sigma() []float64 { return append([]float64(nil), l.sigma...) }

// Embed folds an object into the latent space and L2-normalises it:
// v = Σ⁻¹ Uᵀ x with x the TF-IDF feature vector. Features unknown to the
// training corpus are ignored. A zero vector is returned for objects with
// no known features.
func (l *LSA) Embed(o *media.Object) []float64 {
	emb := make([]float64, l.rank)
	for i, fid := range o.Feats {
		if int(fid) >= len(l.u) {
			continue
		}
		a := float64(o.Counts[i]) * l.idf[fid]
		uf := l.u[fid]
		for j := range emb {
			emb[j] += a * uf[j]
		}
	}
	for j := range emb {
		if l.sigma[j] > 0 {
			emb[j] /= l.sigma[j]
		}
	}
	var norm float64
	for _, x := range emb {
		norm += x * x
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for j := range emb {
			emb[j] /= norm
		}
	}
	return emb
}

// Name implements Scorer.
func (l *LSA) Name() string { return "LSA" }

// Score implements Scorer: cosine in the latent space, clamped to [0, 1]
// (embeddings are unit vectors, so this is (1+cos)/2-free — negatives mean
// dissimilar and are clamped to 0 to satisfy the non-negative contract).
func (l *LSA) Score(q, o *media.Object) float64 {
	var qEmb []float64
	if int(q.ID) >= 0 && int(q.ID) < len(l.docEmb) && l.corpus.Objects[q.ID] == q {
		qEmb = l.docEmb[q.ID]
	} else {
		qEmb = l.Embed(q)
	}
	oEmb := l.docEmb[o.ID]
	var dot float64
	for j := range qEmb {
		dot += qEmb[j] * oEmb[j]
	}
	if dot < 0 {
		return 0
	}
	return dot
}
