// Package baselines implements the three state-of-the-art feature fusion
// competitors the paper evaluates against (Section 5.1.1):
//
//   - LSA — early fusion by latent semantic analysis over the concatenated
//     multi-type feature space (the M-LSA line of [22, 23]); implemented
//     with a from-scratch truncated SVD.
//   - TP — early fusion by tensor-product kernel combination of per-type
//     kernels without any pruning (Basilico & Hofmann [3]).
//   - RB — late fusion by RankBoost over the per-feature-type result lists
//     (Freund et al. [9], the strongest late-fusion combiner in [21]).
//
// All three expose the same Scorer interface so the experiment harness can
// swap systems; generic Search/SearchAmong drivers turn a pairwise scorer
// into a ranker. For recommendation the baselines score candidates against
// the naive "big object" union of the user history (Section 4's strawman),
// since none of them has a temporal component.
package baselines

import (
	"math"

	"figfusion/internal/media"
	"figfusion/internal/numeric"
	"figfusion/internal/topk"
)

// Scorer computes a similarity between a query object and a database
// object. Implementations must be safe for concurrent use.
type Scorer interface {
	// Name identifies the system in experiment output ("LSA", "TP", "RB").
	Name() string
	// Score returns a non-negative similarity; larger is more similar.
	Score(q, o *media.Object) float64
}

// Search ranks the whole corpus for a query and returns the top k,
// excluding one object (pass a negative ID to keep everything).
func Search(s Scorer, corpus *media.Corpus, q *media.Object, k int, exclude media.ObjectID) []topk.Item {
	h := topk.NewHeap(k)
	for _, o := range corpus.Objects {
		if o.ID == exclude {
			continue
		}
		if v := s.Score(q, o); v > 0 {
			h.Push(topk.Item{ID: o.ID, Score: v})
		}
	}
	return h.Results()
}

// SearchAmong ranks only the candidate set — the recommendation path, where
// candidates are the newly incoming objects.
func SearchAmong(s Scorer, corpus *media.Corpus, q *media.Object, candidates []media.ObjectID, k int) []topk.Item {
	h := topk.NewHeap(k)
	for _, oid := range candidates {
		if v := s.Score(q, corpus.Object(oid)); v > 0 {
			h.Push(topk.Item{ID: oid, Score: v})
		}
	}
	return h.Results()
}

// kindCosine computes the cosine similarity of two objects restricted to
// one feature modality — the per-type kernel shared by TP and RB.
func kindCosine(corpus *media.Corpus, a, b *media.Object, kind media.Kind) float64 {
	nf := media.FID(corpus.Dict.Len())
	var dot, na, nb float64
	for i, f := range a.Feats {
		// Features outside the corpus dictionary (external query objects)
		// cannot match anything; skip them.
		if f >= nf || corpus.KindOf(f) != kind {
			continue
		}
		ca := float64(a.Counts[i])
		na += ca * ca
		if cb := b.Count(f); cb > 0 {
			dot += ca * float64(cb)
		}
	}
	for i, f := range b.Feats {
		if f >= nf || corpus.KindOf(f) != kind {
			continue
		}
		cb := float64(b.Counts[i])
		nb += cb * cb
	}
	if numeric.IsZero(na) || numeric.IsZero(nb) {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}
