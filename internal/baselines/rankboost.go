package baselines

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"figfusion/internal/media"
	"figfusion/internal/numeric"
)

// RB is the late-fusion baseline: per-feature-type result lists are
// combined by RankBoost (Freund, Iyer, Schapire & Singer [9]), the stronger
// of the late-fusion combiners compared in [21]. Weak rankers are threshold
// functions h(q,o) = 1[cos_kind(q,o) > θ]; boosting reweights misordered
// relevant/irrelevant pairs and accumulates α-weighted weak rankers into
// the final scoring function H(q,o) = Σ_t α_t h_t(q,o).
type RB struct {
	corpus *media.Corpus
	weak   []weakRanker
}

type weakRanker struct {
	kind  media.Kind
	theta float64
	alpha float64
}

// RBConfig controls RankBoost training.
type RBConfig struct {
	// Rounds is the number of boosting rounds T.
	Rounds int
	// PairsPerQuery is how many (relevant, irrelevant) training pairs are
	// sampled per training query.
	PairsPerQuery int
	// Thresholds is the number of candidate θ values per modality,
	// placed at score quantiles.
	Thresholds int
	// Seed makes training reproducible.
	Seed int64
}

// DefaultRBConfig returns the setup used in the experiments.
func DefaultRBConfig() RBConfig {
	return RBConfig{Rounds: 20, PairsPerQuery: 60, Thresholds: 10, Seed: 1}
}

// trainingPair is one crucial pair: the relevant object should outrank the
// irrelevant one for the query.
type trainingPair struct {
	scores [2][media.NumKinds]float64 // [relevant, irrelevant] per-kind cosines
	weight float64
}

// TrainRB fits the late-fusion combiner on training queries with a
// relevance oracle (in experiments, the planted-topic ground truth — the
// supervised signal every late-fusion method in [21, 28] assumes).
func TrainRB(corpus *media.Corpus, queries []media.ObjectID,
	relevant func(q, o *media.Object) bool, cfg RBConfig) (*RB, error) {
	if cfg.Rounds < 1 || cfg.PairsPerQuery < 1 || cfg.Thresholds < 1 {
		return nil, fmt.Errorf("rankboost: bad config %+v", cfg)
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("rankboost: no training queries")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rb := &RB{corpus: corpus}
	pairs := samplePairs(corpus, queries, relevant, cfg, rng)
	if len(pairs) == 0 {
		return nil, fmt.Errorf("rankboost: no crucial pairs sampled (degenerate relevance)")
	}
	thresholds := candidateThresholds(pairs, cfg.Thresholds)
	// Initial distribution: uniform over crucial pairs.
	for i := range pairs {
		pairs[i].weight = 1 / float64(len(pairs))
	}
	for round := 0; round < cfg.Rounds; round++ {
		best, bestR := weakRanker{}, 0.0
		for kind := media.Kind(0); int(kind) < media.NumKinds; kind++ {
			for _, theta := range thresholds[kind] {
				r := 0.0
				for _, p := range pairs {
					hRel := step(p.scores[0][kind], theta)
					hIrr := step(p.scores[1][kind], theta)
					r += p.weight * (hRel - hIrr)
				}
				if math.Abs(r) > math.Abs(bestR) {
					bestR = r
					best = weakRanker{kind: kind, theta: theta}
				}
			}
		}
		if math.Abs(bestR) >= 1-1e-9 {
			bestR = math.Copysign(1-1e-9, bestR)
		}
		if numeric.IsZero(bestR) {
			break // no weak ranker separates the remaining distribution
		}
		best.alpha = 0.5 * math.Log((1+bestR)/(1-bestR))
		rb.weak = append(rb.weak, best)
		// Reweight: pairs the combined ranker still misorders gain mass.
		var z float64
		for i := range pairs {
			hRel := step(pairs[i].scores[0][best.kind], best.theta)
			hIrr := step(pairs[i].scores[1][best.kind], best.theta)
			pairs[i].weight *= math.Exp(best.alpha * (hIrr - hRel))
			z += pairs[i].weight
		}
		if z <= 0 {
			break
		}
		for i := range pairs {
			pairs[i].weight /= z
		}
	}
	if len(rb.weak) == 0 {
		return nil, fmt.Errorf("rankboost: training produced no weak rankers")
	}
	return rb, nil
}

func samplePairs(corpus *media.Corpus, queries []media.ObjectID,
	relevant func(q, o *media.Object) bool, cfg RBConfig, rng *rand.Rand) []trainingPair {
	var pairs []trainingPair
	n := corpus.Len()
	for _, qid := range queries {
		q := corpus.Object(qid)
		var rel, irr []*media.Object
		// Reservoir-ish sampling: scan a bounded random subset.
		budget := cfg.PairsPerQuery * 8
		for i := 0; i < budget; i++ {
			o := corpus.Object(media.ObjectID(rng.Intn(n)))
			if o.ID == qid {
				continue
			}
			if relevant(q, o) {
				rel = append(rel, o)
			} else {
				irr = append(irr, o)
			}
		}
		if len(rel) == 0 || len(irr) == 0 {
			continue
		}
		for p := 0; p < cfg.PairsPerQuery; p++ {
			r := rel[rng.Intn(len(rel))]
			ir := irr[rng.Intn(len(irr))]
			var tp trainingPair
			for kind := media.Kind(0); int(kind) < media.NumKinds; kind++ {
				tp.scores[0][kind] = kindCosine(corpus, q, r, kind)
				tp.scores[1][kind] = kindCosine(corpus, q, ir, kind)
			}
			pairs = append(pairs, tp)
		}
	}
	return pairs
}

// candidateThresholds places θ candidates at quantiles of the observed
// POSITIVE per-kind scores (sparse modalities score 0 on most pairs, which
// would otherwise collapse every quantile to 0), always including 0 itself
// so "any match at all" stays available as a weak ranker.
func candidateThresholds(pairs []trainingPair, count int) [media.NumKinds][]float64 {
	var out [media.NumKinds][]float64
	for kind := 0; kind < media.NumKinds; kind++ {
		vals := make([]float64, 0, 2*len(pairs))
		for _, p := range pairs {
			if v := p.scores[0][kind]; v > 0 {
				vals = append(vals, v)
			}
			if v := p.scores[1][kind]; v > 0 {
				vals = append(vals, v)
			}
		}
		out[kind] = append(out[kind], 0)
		if len(vals) == 0 {
			continue
		}
		sort.Float64s(vals)
		for q := 1; q <= count; q++ {
			idx := q * len(vals) / (count + 1)
			if idx >= len(vals) {
				idx = len(vals) - 1
			}
			v := vals[idx]
			//figlint:allow floatcmp -- deduplicating bit-identical quantile cut points drawn from one sorted slice; epsilon merging would change the trained ranker
			if out[kind][len(out[kind])-1] != v {
				out[kind] = append(out[kind], v)
			}
		}
	}
	return out
}

func step(score, theta float64) float64 {
	if score > theta {
		return 1
	}
	return 0
}

// Name implements Scorer.
func (rb *RB) Name() string { return "RB" }

// Rounds returns the number of weak rankers retained.
func (rb *RB) Rounds() int { return len(rb.weak) }

// Score implements Scorer: the α-weighted vote of the weak rankers.
func (rb *RB) Score(q, o *media.Object) float64 {
	var kinds [media.NumKinds]float64
	var computed [media.NumKinds]bool
	var sum float64
	for _, w := range rb.weak {
		if !computed[w.kind] {
			kinds[w.kind] = kindCosine(rb.corpus, q, o, w.kind)
			computed[w.kind] = true
		}
		sum += w.alpha * step(kinds[w.kind], w.theta)
	}
	if sum < 0 {
		return 0
	}
	return sum
}
