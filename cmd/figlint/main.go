// Command figlint runs the repo's custom static-analysis suite (see
// internal/analysis): stdlib-only type-checking plus analyzers for the
// numeric, determinism and concurrency invariants the FIG reproduction
// depends on.
//
// Usage:
//
//	figlint [-run names] [-tests] [-list] [-json] [package-dir | ./...]...
//
// With no arguments (or "./...") every package in the enclosing module
// is analyzed. Exits 1 when any diagnostic survives the
// //figlint:allow pragmas, 2 on driver errors. -json swaps the
// file:line:col text lines for a JSON array of findings (empty array on a
// clean run) with the same exit codes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"figfusion/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		runNames = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		tests    = flag.Bool("tests", false, "also analyze in-package _test.go files")
		list     = flag.Bool("list", false, "list analyzers and exit")
		asJSON   = flag.Bool("json", false, "emit findings as a JSON array instead of text lines")
	)
	flag.Parse()

	analyzers, err := analysis.Lookup(*runNames)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	loader.IncludeTests = *tests

	pkgs, err := loadTargets(loader, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "figlint: warning: %s: %v\n", pkg.PkgPath, terr)
		}
	}

	diags := analysis.Run(pkgs, analyzers)
	if *asJSON {
		if err := analysis.WriteJSON(os.Stdout, diags, relPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(shorten(d))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "figlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// loadTargets maps command-line patterns to loaded packages. "./..." (and
// an empty argument list) loads the whole module; anything else is taken
// as a package directory relative to the current directory.
func loadTargets(loader *analysis.Loader, args []string) ([]*analysis.Package, error) {
	all := len(args) == 0
	var dirs []string
	for _, a := range args {
		if a == "./..." || a == "..." {
			all = true
			continue
		}
		dirs = append(dirs, filepath.Clean(a))
	}
	if all {
		return loader.LoadModule()
	}
	paths := make([]string, 0, len(dirs))
	for _, d := range dirs {
		ip, err := loader.ImportPathFor(d)
		if err != nil {
			return nil, err
		}
		paths = append(paths, ip)
	}
	sort.Strings(paths)
	return loader.LoadPackages(paths)
}

// shorten prints paths relative to the working directory when possible.
func shorten(d analysis.Diagnostic) string {
	if rel := relPath(d.Pos.Filename); rel != d.Pos.Filename {
		return fmt.Sprintf("%s:%d:%d: %s: %s", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	return d.String()
}

// relPath maps a filename to working-directory-relative form when it lies
// under the working directory; paths outside come back unchanged.
func relPath(file string) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
	}
	return file
}
