// Command figdata generates a synthetic social-media corpus — the offline
// stand-in for the paper's Flickr crawl — and persists it to a gob file
// that figsearch can load, so repeated experiments share one corpus.
//
// Usage:
//
//	figdata -out corpus.gob -objects 20000 -topics 24 -seed 7
//	figdata -out corpus.gob -index snap -shards 4   # sharded snapshot set for figserver -shards 4
//	figdata -inspect snap.0                         # print an index snapshot's header
//	figdata -inspect snap.manifest.json             # a snapshot set: manifest + every shard
//	figdata -inspect snapshots/                     # every snapshot set under a directory
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"figfusion/internal/dataset"
	"figfusion/internal/fig"
	"figfusion/internal/index"
	"figfusion/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figdata: ")
	var (
		out     = flag.String("out", "corpus.gob", "output file")
		objects = flag.Int("objects", 5000, "number of objects |D|")
		topics  = flag.Int("topics", 0, "number of planted topics (0 = scale-derived)")
		months  = flag.Int("months", 6, "timeline length in months")
		seed    = flag.Int64("seed", 1, "generation seed")
		idxOut  = flag.String("index", "", "also build and persist the clique index to this file (with -shards > 1: the base path of the sharded snapshot set)")
		shards  = flag.Int("shards", 1, "partition the index across this many shards; writes <index>.manifest.json plus one snapshot per shard")
		inspect = flag.String("inspect", "", "inspect and exit: an index snapshot, a .manifest.json snapshot set, or a directory of snapshot sets (e.g. a router manifest directory)")
	)
	flag.Parse()

	if *inspect != "" {
		if err := inspectPath(*inspect); err != nil {
			log.Fatal(err)
		}
		return
	}

	cfg := dataset.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumObjects = *objects
	cfg.Months = *months
	if *topics > 0 {
		cfg.NumTopics = *topics
	} else {
		cfg.NumTopics = *objects / 40
		if cfg.NumTopics < 8 {
			cfg.NumTopics = 8
		}
		if cfg.NumTopics > 48 {
			cfg.NumTopics = 48
		}
	}
	d, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := d.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d objects, %d features, %d topics, %d users, %d visual words\n",
		*out, d.Corpus.Len(), d.Corpus.Dict.Len(), cfg.NumTopics, d.Network.Len(), d.Vocab.Size())
	if *idxOut != "" && *shards > 1 {
		// Thresholds must match what figserver trains at startup, or the
		// loaded snapshot pairs with a different clique structure.
		model := d.Model()
		model.TrainThresholds(200, 0.35, rand.New(rand.NewSource(*seed+13)))
		router, err := shard.NewRouter(model, shard.Config{Shards: *shards})
		if err != nil {
			log.Fatal(err)
		}
		man, err := router.Save(*idxOut)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: %d shards cut at %d objects\n", shard.ManifestPath(*idxOut), man.Shards, man.Objects)
		for _, si := range router.ShardInfos() {
			fmt.Printf("  shard %d: %d objects, %d cliques, %d postings\n", si.Shard, si.Objects, si.Cliques, si.Postings)
		}
		return
	}
	if *idxOut != "" {
		model := d.Model()
		model.TrainThresholds(200, 0.35, rand.New(rand.NewSource(*seed+13)))
		inv := index.Build(model, fig.Options{}, fig.EnumerateOptions{})
		fi, err := os.Create(*idxOut)
		if err != nil {
			log.Fatal(err)
		}
		defer fi.Close()
		if err := inv.Save(fi); err != nil {
			log.Fatal(err)
		}
		if err := fi.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: %d cliques, %d postings\n", *idxOut, inv.NumCliques(), inv.Postings())
	}
}

// inspectPath dispatches -inspect on what the path is: a directory walks
// every snapshot set under it, a manifest reports its whole set, anything
// else is a single snapshot file.
func inspectPath(path string) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	switch {
	case fi.IsDir():
		return inspectDir(path)
	case strings.HasSuffix(path, shard.ManifestSuffix):
		return inspectManifest(path)
	default:
		return inspectSnapshot(path)
	}
}

// inspectDir recursively reports every snapshot set (manifest plus its
// per-shard snapshots) under dir — the router-manifest-directory form, for
// auditing a multi-node deployment's on-disk state in one pass.
func inspectDir(dir string) error {
	manifests := 0
	var failed []string
	err := filepath.WalkDir(dir, func(p string, d fs.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		if d.IsDir() || !strings.HasSuffix(p, shard.ManifestSuffix) {
			return nil
		}
		if manifests > 0 {
			fmt.Println()
		}
		manifests++
		if err := inspectManifest(p); err != nil {
			fmt.Printf("  ERROR: %v\n", err)
			failed = append(failed, p)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if manifests == 0 {
		return fmt.Errorf("no *%s snapshot sets under %s", shard.ManifestSuffix, dir)
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d of %d snapshot sets failed inspection: %s", len(failed), manifests, strings.Join(failed, ", "))
	}
	fmt.Printf("\n%d snapshot set(s) inspected, all sections ok\n", manifests)
	return nil
}

// inspectManifest reports one snapshot set: the manifest's totals, then
// every per-shard snapshot's header, counts and per-section checksum
// status.
func inspectManifest(path string) error {
	man, err := shard.ReadManifest(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: v%d snapshot set, %d shard(s) cut at %d objects (generation %d, %d inserts)\n",
		path, man.Version, man.Shards, man.Objects, man.Generation, man.Inserts)
	dir := filepath.Dir(path)
	var missing []string
	for _, name := range man.Files {
		full := filepath.Join(dir, name)
		if err := inspectSnapshot(full); err != nil {
			fmt.Printf("%s: ERROR: %v\n", full, err)
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("%s: %d of %d shard snapshots unreadable: %s",
			path, len(missing), man.Shards, strings.Join(missing, ", "))
	}
	return nil
}

// inspectSnapshot prints an index snapshot's header and section summary
// without building a servable index.
func inspectSnapshot(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := index.InspectSnapshot(f)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %s snapshot, %d bytes\n", path, info.Format, info.Bytes)
	if info.Format == "segment" {
		fmt.Printf("  version %d, saved at generation %d, header crc %08x\n", info.Version, info.Generation, info.HeaderCRC)
	}
	fmt.Printf("  %d entries (%d fresh), %d features, %d postings, %d blocks\n",
		info.Entries, info.Fresh, info.Feats, info.Postings, info.Blocks)
	for _, s := range info.Sections {
		status := "ok"
		if !s.OK {
			status = "CORRUPT"
		}
		fmt.Printf("  section %-8s %10d bytes  crc %08x  %s\n", s.Name, s.Bytes, s.CRC, status)
	}
	return nil
}
