// Command figrecommend demonstrates temporal media recommendation: it
// generates a corpus with user favourite histories (interest drift
// included), builds the FIG-T recommender and prints, for one user, the
// top recommendations with hit markers against the held-out favourites.
//
// Usage:
//
//	figrecommend -objects 2000 -users 20 -user 3 -delta 0.4 -k 10
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"figfusion/internal/dataset"
	"figfusion/internal/media"
	"figfusion/internal/mrf"
	"figfusion/internal/recommend"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figrecommend: ")
	var (
		objects = flag.Int("objects", 2000, "corpus size")
		users   = flag.Int("users", 20, "users to generate")
		userIdx = flag.Int("user", 0, "which user profile to recommend for")
		k       = flag.Int("k", 10, "recommendations to show")
		delta   = flag.Float64("delta", 0.4, "temporal decay δ of Eq. 10")
		flat    = flag.Bool("flat", false, "disable the temporal model (plain FIG)")
		seed    = flag.Int64("seed", 1, "generation seed")
	)
	flag.Parse()

	cfg := dataset.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumObjects = *objects
	rc := dataset.DefaultRecConfig()
	rc.NumUsers = *users
	rd, err := dataset.GenerateRec(cfg, rc)
	if err != nil {
		log.Fatal(err)
	}
	if *userIdx < 0 || *userIdx >= len(rd.Profiles) {
		log.Fatalf("user %d out of range [0, %d)", *userIdx, len(rd.Profiles))
	}
	params := mrf.DefaultParams()
	params.Delta = *delta
	rec, err := recommend.New(rd.Model(), recommend.Config{Temporal: !*flat, Params: params})
	if err != nil {
		log.Fatal(err)
	}
	p := rd.Profiles[*userIdx]
	fmt.Printf("user %d: persistent interests %v", *userIdx, p.Interests)
	if p.Transient >= 0 {
		fmt.Printf(", transient topic %d during months [%d,%d)", p.Transient, p.TransientStart, p.TransientEnd)
	}
	fmt.Printf("\nhistory: %d favourites over months 0..%d; %d held-out future favourites\n",
		len(p.History), rd.Now-1, len(p.Future))

	results := rec.Recommend(rd.HistoryObjects(p), rd.Candidates, *k, rd.Now)
	hits := 0
	for rank, it := range results {
		o := rd.Corpus.Object(it.ID)
		marker := " "
		if p.Future[it.ID] {
			marker = "*"
			hits++
		}
		fmt.Printf("%s %2d. object %-6d topic %-3d month %d score %.5f  tags: %s\n",
			marker, rank+1, o.ID, o.PrimaryTopic, o.Month, it.Score,
			strings.Join(tagNames(rd, o, 4), ", "))
	}
	mode := "FIG-T"
	if *flat {
		mode = "FIG"
	}
	fmt.Printf("%s δ=%.2f precision@%d = %.3f (* = actually favourited later)\n",
		mode, *delta, len(results), float64(hits)/float64(max(1, len(results))))
}

func tagNames(rd *dataset.RecDataset, o *media.Object, n int) []string {
	var out []string
	for _, fid := range o.Feats {
		f := rd.Corpus.Dict.Feature(fid)
		if f.Kind == media.Text {
			out = append(out, f.Name)
		}
		if len(out) == n {
			break
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
