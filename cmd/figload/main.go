// Command figload drives live /v1 traffic against a running figserver —
// the load-generation half of the serving tier. Query popularity is
// zipfian over the corpus (hot objects dominate, the distribution the
// server's coalescing cache is built for), with a configurable mix of
// searches, recommendations and inserts.
//
// Closed loop (default) measures capacity: -concurrency workers each keep
// one request outstanding and throughput adapts to the server. Open loop
// (-rate N) offers a fixed load the way real users arrive, and is how the
// admission-control story is told: offer 2× capacity and watch the server
// shed with 503s while the p99 of admitted requests stays bounded.
//
// Usage:
//
//	figload -server localhost:8080 -duration 10s -concurrency 16
//	figload -server localhost:8080 -rate 500 -duration 30s -warmup 5s
//	figload -server localhost:8080 -searches 8 -recommends 1 -inserts 1
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"figfusion/internal/client"
	"figfusion/internal/loadgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figload: ")
	var (
		server      = flag.String("server", "localhost:8080", "figserver address (any -role)")
		duration    = flag.Duration("duration", 10*time.Second, "measured window")
		warmup      = flag.Duration("warmup", 0, "unrecorded warmup before measuring")
		rate        = flag.Float64("rate", 0, "open-loop offered load in req/s (0 = closed loop)")
		concurrency = flag.Int("concurrency", 8, "closed-loop workers")
		outstanding = flag.Int("max-outstanding", 256, "open-loop in-flight bound; arrivals past it drop")
		k           = flag.Int("k", 10, "results per search")
		searches    = flag.Int("searches", 1, "search weight in the operation mix")
		recommends  = flag.Int("recommends", 0, "recommend weight in the operation mix")
		inserts     = flag.Int("inserts", 0, "insert weight in the operation mix")
		objects     = flag.Int("objects", 0, "query ID space (0 = size from /v1/healthz)")
		seed        = flag.Int64("seed", 1, "workload seed")
		zipfS       = flag.Float64("zipf-s", 1.2, "zipfian skew exponent (>1)")
		asJSON      = flag.Bool("json", false, "print the report as JSON")
	)
	flag.Parse()

	c := client.New(*server, client.WithRetries(0))
	defer c.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := loadgen.Config{
		Objects:        *objects,
		Mix:            loadgen.Mix{Search: *searches, Recommend: *recommends, Insert: *inserts},
		K:              *k,
		Concurrency:    *concurrency,
		Rate:           *rate,
		MaxOutstanding: *outstanding,
		Duration:       *duration,
		Warmup:         *warmup,
		Seed:           *seed,
		ZipfS:          *zipfS,
	}
	mode := fmt.Sprintf("closed loop, %d workers", cfg.Concurrency)
	if cfg.Rate > 0 {
		mode = fmt.Sprintf("open loop, %.0f req/s offered", cfg.Rate)
	}
	log.Printf("driving %s for %v (%s)", c.Base(), cfg.Duration, mode)
	report, err := loadgen.Run(ctx, c, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Println(report.String())
	if report.Shed > 0 {
		fmt.Printf("the server shed %.1f%% of offered requests — it was past capacity and said so\n", 100*report.ShedRate())
	}
}
