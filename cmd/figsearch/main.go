// Command figsearch runs top-k FIG retrieval over a corpus: it loads (or
// generates) a dataset, builds the correlation model and the clique
// inverted index, and answers similarity queries for corpus objects,
// printing the matched features the way the paper's Figure 6 does.
//
// Usage:
//
//	figsearch -data corpus.gob -query 42 -k 10
//	figsearch -objects 2000 -query 7            # generate on the fly
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"figfusion"
	"figfusion/internal/dataset"
	"figfusion/internal/media"
	"figfusion/internal/retrieval"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figsearch: ")
	var (
		data    = flag.String("data", "", "corpus gob written by figdata (empty = generate)")
		objects = flag.Int("objects", 2000, "corpus size when generating")
		seed    = flag.Int64("seed", 1, "generation seed")
		query   = flag.Int("query", 0, "query object ID")
		text    = flag.String("text", "", "free-text query (overrides -query)")
		k       = flag.Int("k", 10, "results to return")
		scan    = flag.Bool("scan", false, "use the sequential scan instead of the clique index")
		prune   = flag.String("pruning", retrieval.PruneBlockMax.String(), "top-k pruning mode: off, blockmax (exact), or blockmax-quantized")
	)
	flag.Parse()
	pruning, err := retrieval.ParsePruningMode(*prune)
	if err != nil {
		log.Fatal(err)
	}

	d, err := loadOrGenerate(*data, *objects, *seed)
	if err != nil {
		log.Fatal(err)
	}
	model := d.Model()
	model.TrainThresholds(200, 0.35, rand.New(rand.NewSource(*seed+13)))
	engine, err := retrieval.NewEngine(model, retrieval.Config{SkipIndex: *scan, Pruning: pruning})
	if err != nil {
		log.Fatal(err)
	}
	var q *media.Object
	exclude := retrieval.NoExclude
	if *text != "" {
		var ok bool
		q, ok = figfusion.TextQuery(d.Corpus, *text)
		if !ok {
			log.Fatalf("no term of %q matches the corpus vocabulary", *text)
		}
		fmt.Printf("text query %q → %d matched terms\n", *text, q.Len())
	} else {
		if *query < 0 || *query >= d.Corpus.Len() {
			log.Fatalf("query %d out of range [0, %d)", *query, d.Corpus.Len())
		}
		q = d.Corpus.Object(media.ObjectID(*query))
		exclude = q.ID
		fmt.Printf("query object %d (topic %d, month %d)\n", q.ID, q.PrimaryTopic, q.Month)
		fmt.Printf("  tags: %s\n", strings.Join(names(d, q, media.Text), ", "))
		fmt.Printf("  users: %s\n", strings.Join(names(d, q, media.User), ", "))
	}

	results := engine.Search(q, *k, exclude)
	if len(results) == 0 {
		fmt.Println("no results")
		os.Exit(0)
	}
	for rank, it := range results {
		o := d.Corpus.Object(it.ID)
		marker := " "
		if dataset.Relevant(q, o) {
			marker = "*"
		}
		fmt.Printf("%s %2d. object %-6d topic %-3d score %.5f  shared: %s\n",
			marker, rank+1, o.ID, o.PrimaryTopic, it.Score, strings.Join(shared(d, q, o), ", "))
	}
	fmt.Println("(* = shares the query's planted primary topic)")
}

func loadOrGenerate(path string, objects int, seed int64) (*dataset.Dataset, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dataset.Load(f)
	}
	cfg := dataset.DefaultConfig()
	cfg.Seed = seed
	cfg.NumObjects = objects
	return dataset.Generate(cfg)
}

func names(d *dataset.Dataset, o *media.Object, kind media.Kind) []string {
	var out []string
	for _, fid := range o.Feats {
		f := d.Corpus.Dict.Feature(fid)
		if f.Kind == kind {
			out = append(out, f.Name)
		}
	}
	return out
}

func shared(d *dataset.Dataset, a, b *media.Object) []string {
	var out []string
	for _, fid := range a.Feats {
		if b.Has(fid) {
			out = append(out, d.Corpus.Dict.Feature(fid).String())
		}
	}
	if len(out) > 6 {
		out = out[:6]
	}
	if len(out) == 0 {
		out = []string{"(correlation-only match)"}
	}
	return out
}
