// Command figsearch runs top-k FIG retrieval over a corpus: it loads (or
// generates) a dataset, builds the correlation model and the clique
// inverted index, and answers similarity queries for corpus objects,
// printing the matched features the way the paper's Figure 6 does.
//
// With -server it skips the local engine entirely and queries a running
// figserver (any -role) over the /v1 wire through the shared typed
// client — the quickest way to probe a live deployment from a shell.
//
// Usage:
//
//	figsearch -data corpus.gob -query 42 -k 10
//	figsearch -objects 2000 -query 7            # generate on the fly
//	figsearch -server localhost:8080 -query 42  # ask a running figserver
//	figsearch -server localhost:8080 -text "beach sunset"
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"
	"time"

	"figfusion"
	"figfusion/internal/api"
	"figfusion/internal/client"
	"figfusion/internal/dataset"
	"figfusion/internal/media"
	"figfusion/internal/retrieval"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figsearch: ")
	var (
		data    = flag.String("data", "", "corpus gob written by figdata (empty = generate)")
		objects = flag.Int("objects", 2000, "corpus size when generating")
		seed    = flag.Int64("seed", 1, "generation seed")
		query   = flag.Int("query", 0, "query object ID")
		text    = flag.String("text", "", "free-text query (overrides -query)")
		k       = flag.Int("k", 10, "results to return")
		scan    = flag.Bool("scan", false, "use the sequential scan instead of the clique index")
		prune   = flag.String("pruning", retrieval.PruneBlockMax.String(), "top-k pruning mode: off, blockmax (exact), or blockmax-quantized")
		server  = flag.String("server", "", "query a running figserver at this address instead of a local engine")
		timeout = flag.Duration("timeout", 10*time.Second, "request timeout in -server mode")
	)
	flag.Parse()
	if *server != "" {
		if err := remoteSearch(*server, *timeout, *query, *text, *k); err != nil {
			log.Fatal(err)
		}
		return
	}
	pruning, err := retrieval.ParsePruningMode(*prune)
	if err != nil {
		log.Fatal(err)
	}

	d, err := loadOrGenerate(*data, *objects, *seed)
	if err != nil {
		log.Fatal(err)
	}
	model := d.Model()
	model.TrainThresholds(200, 0.35, rand.New(rand.NewSource(*seed+13)))
	engine, err := retrieval.NewEngine(model, retrieval.Config{SkipIndex: *scan, Pruning: pruning})
	if err != nil {
		log.Fatal(err)
	}
	var q *media.Object
	exclude := retrieval.NoExclude
	if *text != "" {
		var ok bool
		q, ok = figfusion.TextQuery(d.Corpus, *text)
		if !ok {
			log.Fatalf("no term of %q matches the corpus vocabulary", *text)
		}
		fmt.Printf("text query %q → %d matched terms\n", *text, q.Len())
	} else {
		if *query < 0 || *query >= d.Corpus.Len() {
			log.Fatalf("query %d out of range [0, %d)", *query, d.Corpus.Len())
		}
		q = d.Corpus.Object(media.ObjectID(*query))
		exclude = q.ID
		fmt.Printf("query object %d (topic %d, month %d)\n", q.ID, q.PrimaryTopic, q.Month)
		fmt.Printf("  tags: %s\n", strings.Join(names(d, q, media.Text), ", "))
		fmt.Printf("  users: %s\n", strings.Join(names(d, q, media.User), ", "))
	}

	results := engine.Search(q, *k, exclude)
	if len(results) == 0 {
		fmt.Println("no results")
		os.Exit(0)
	}
	for rank, it := range results {
		o := d.Corpus.Object(it.ID)
		marker := " "
		if dataset.Relevant(q, o) {
			marker = "*"
		}
		fmt.Printf("%s %2d. object %-6d topic %-3d score %.5f  shared: %s\n",
			marker, rank+1, o.ID, o.PrimaryTopic, it.Score, strings.Join(shared(d, q, o), ", "))
	}
	fmt.Println("(* = shares the query's planted primary topic)")
}

// remoteSearch asks a running figserver over the /v1 wire and prints the
// ranked results with whatever context the object endpoint can add.
func remoteSearch(addr string, timeout time.Duration, query int, text string, k int) error {
	c := client.New(addr)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	health, err := c.Healthz(ctx)
	if err != nil {
		return fmt.Errorf("server unreachable: %w", err)
	}
	req := &api.SearchRequest{K: k}
	if text != "" {
		req.Text = text
		fmt.Printf("text query %q against %s (%d objects)\n", text, c.Base(), health.Objects)
	} else {
		id := int64(query)
		req.ID = &id
		req.Exclude = &id
		fmt.Printf("query object %d against %s (%d objects)\n", query, c.Base(), health.Objects)
	}
	resp, err := c.Search(ctx, req)
	if err != nil {
		return err
	}
	if len(resp.Results) == 0 {
		fmt.Println("no results")
		return nil
	}
	if resp.Partial {
		fmt.Println("(partial: some cluster nodes did not answer)")
	}
	for rank, it := range resp.Results {
		line := fmt.Sprintf("%2d. object %-6d score %.5f", rank+1, it.ID, it.Score)
		if o, oerr := c.Object(ctx, it.ID); oerr == nil {
			tags := o.Tags
			if len(tags) > 6 {
				tags = tags[:6]
			}
			line += "  tags: " + strings.Join(tags, ", ")
		}
		fmt.Println(line)
	}
	return nil
}

func loadOrGenerate(path string, objects int, seed int64) (*dataset.Dataset, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dataset.Load(f)
	}
	cfg := dataset.DefaultConfig()
	cfg.Seed = seed
	cfg.NumObjects = objects
	return dataset.Generate(cfg)
}

func names(d *dataset.Dataset, o *media.Object, kind media.Kind) []string {
	var out []string
	for _, fid := range o.Feats {
		f := d.Corpus.Dict.Feature(fid)
		if f.Kind == kind {
			out = append(out, f.Name)
		}
	}
	return out
}

func shared(d *dataset.Dataset, a, b *media.Object) []string {
	var out []string
	for _, fid := range a.Feats {
		if b.Has(fid) {
			out = append(out, d.Corpus.Dict.Feature(fid).String())
		}
	}
	if len(out) > 6 {
		out = out[:6]
	}
	if len(out) == 0 {
		out = []string{"(correlation-only match)"}
	}
	return out
}
