// Command figserver serves FIG similarity search over HTTP/JSON: it loads
// (or generates) a corpus, builds the engine — a single engine or a
// scatter-gather shard router — and listens for search, inspection and
// ingestion requests until SIGINT/SIGTERM, then drains in-flight requests
// and exits.
//
// Usage:
//
//	figserver -addr :8080 -data corpus.gob
//	figserver -addr :8080 -objects 5000        # generate on the fly
//	figserver -addr :8080 -shards 4            # scatter-gather serving
//	figserver -data corpus.gob -shards 4 -index snap   # cold-start from figdata -shards snapshots
//
//	curl 'localhost:8080/search?text=sunset&k=5'
//	curl 'localhost:8080/search?id=42'
//	curl 'localhost:8080/object?id=42'
//	curl 'localhost:8080/healthz'
//	curl -XPOST localhost:8080/objects -d '{"tags":["sunset","beach"],"month":5}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"figfusion/internal/dataset"
	"figfusion/internal/index"
	"figfusion/internal/retrieval"
	"figfusion/internal/server"
	"figfusion/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figserver: ")
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		data    = flag.String("data", "", "corpus gob written by figdata (empty = generate)")
		objects = flag.Int("objects", 2000, "corpus size when generating")
		seed    = flag.Int64("seed", 1, "generation seed")
		idx     = flag.String("index", "", "prebuilt index: a clique-index file from figdata -index, or with -shards > 1 the base path of a snapshot set from figdata -shards")
		shards  = flag.Int("shards", 1, "engine shards; > 1 serves scatter-gather over a partitioned index")
		workers = flag.Int("workers", 0, "scoring workers per engine (0 = GOMAXPROCS; sharded mode usually keeps 1 per shard)")
		capFlag = flag.Int("candidate-cap", 0, "cap on scored candidates per query per engine (0 = uncapped/exact)")
		drain   = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()

	var d *dataset.Dataset
	var err error
	if *data != "" {
		f, ferr := os.Open(*data)
		if ferr != nil {
			log.Fatal(ferr)
		}
		d, err = dataset.Load(f)
		f.Close()
	} else {
		cfg := dataset.DefaultConfig()
		cfg.Seed = *seed
		cfg.NumObjects = *objects
		d, err = dataset.Generate(cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	model := d.Model()
	model.TrainThresholds(200, 0.35, rand.New(rand.NewSource(*seed+13)))
	retrievalCfg := retrieval.Config{Workers: *workers, CandidateCap: *capFlag}

	var handler http.Handler
	if *shards > 1 {
		cfg := shard.Config{Shards: *shards, Retrieval: retrievalCfg}
		var router *shard.Router
		if *idx != "" {
			r, man, lerr := shard.Load(model, cfg, *idx)
			if lerr != nil {
				log.Fatal(lerr)
			}
			router = r
			log.Printf("loaded snapshot set %s: %d shards, cut at %d objects", *idx, man.Shards, man.Objects)
		} else {
			router, err = shard.NewRouter(model, cfg)
			if err != nil {
				log.Fatal(err)
			}
		}
		for _, si := range router.ShardInfos() {
			log.Printf("shard %d: %d objects, %d cliques, %d postings", si.Shard, si.Objects, si.Cliques, si.Postings)
		}
		handler = server.NewSharded(router).Handler()
	} else {
		engineCfg := retrievalCfg
		if *idx != "" {
			f, ferr := os.Open(*idx)
			if ferr != nil {
				log.Fatal(ferr)
			}
			prebuilt, lerr := index.Load(f)
			f.Close()
			if lerr != nil {
				log.Fatal(lerr)
			}
			engineCfg.Index = prebuilt
			log.Printf("loaded index: %d cliques", prebuilt.NumCliques())
		}
		engine, err := retrieval.NewEngine(model, engineCfg)
		if err != nil {
			log.Fatal(err)
		}
		handler = server.New(engine).Handler()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving %d objects on %s (%d shard(s))", d.Corpus.Len(), *addr, *shards)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // restore default signal behaviour: a second signal kills immediately
	log.Printf("signal received, draining (timeout %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Printf("drained, bye")
}
