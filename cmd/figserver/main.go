// Command figserver serves FIG similarity search over HTTP/JSON: it loads
// (or generates) a corpus, builds the engine, and listens for search,
// inspection and ingestion requests.
//
// Usage:
//
//	figserver -addr :8080 -data corpus.gob
//	figserver -addr :8080 -objects 5000        # generate on the fly
//
//	curl 'localhost:8080/search?text=sunset&k=5'
//	curl 'localhost:8080/search?id=42'
//	curl 'localhost:8080/object?id=42'
//	curl -XPOST localhost:8080/objects -d '{"tags":["sunset","beach"],"month":5}'
package main

import (
	"flag"
	"log"
	"math/rand"
	"net/http"
	"os"
	"time"

	"figfusion/internal/dataset"
	"figfusion/internal/index"
	"figfusion/internal/retrieval"
	"figfusion/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figserver: ")
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		data    = flag.String("data", "", "corpus gob written by figdata (empty = generate)")
		objects = flag.Int("objects", 2000, "corpus size when generating")
		seed    = flag.Int64("seed", 1, "generation seed")
		idx     = flag.String("index", "", "prebuilt clique index written by figdata -index")
	)
	flag.Parse()

	var d *dataset.Dataset
	var err error
	if *data != "" {
		f, ferr := os.Open(*data)
		if ferr != nil {
			log.Fatal(ferr)
		}
		d, err = dataset.Load(f)
		f.Close()
	} else {
		cfg := dataset.DefaultConfig()
		cfg.Seed = *seed
		cfg.NumObjects = *objects
		d, err = dataset.Generate(cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	model := d.Model()
	model.TrainThresholds(200, 0.35, rand.New(rand.NewSource(*seed+13)))
	engineCfg := retrieval.Config{}
	if *idx != "" {
		f, ferr := os.Open(*idx)
		if ferr != nil {
			log.Fatal(ferr)
		}
		prebuilt, lerr := index.Load(f)
		f.Close()
		if lerr != nil {
			log.Fatal(lerr)
		}
		engineCfg.Index = prebuilt
		log.Printf("loaded index: %d cliques", prebuilt.NumCliques())
	}
	engine, err := retrieval.NewEngine(model, engineCfg)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(engine).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("serving %d objects on %s", d.Corpus.Len(), *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
