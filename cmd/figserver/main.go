// Command figserver serves FIG similarity search over a versioned
// HTTP/JSON API: it loads (or generates) a corpus, builds the engine — a
// single engine or a scatter-gather shard router — and listens for
// search, inspection, ingestion and observability requests until
// SIGINT/SIGTERM, then drains in-flight requests and exits.
//
// All flags parse into one server.Options (see its Flags method); the
// defaults come from server.DefaultOptions, so the flag surface and the
// struct cannot drift apart.
//
// Usage:
//
//	figserver -addr :8080 -data corpus.gob
//	figserver -addr :8080 -objects 5000        # generate on the fly
//	figserver -addr :8080 -shards 4            # scatter-gather serving
//	figserver -data corpus.gob -shards 4 -index snap   # cold-start from figdata -shards snapshots
//	figserver -query-timeout 250ms -pprof      # bounded queries + profiling
//
//	curl 'localhost:8080/v1/search?text=sunset&k=5'
//	curl 'localhost:8080/v1/search?id=42'
//	curl 'localhost:8080/v1/objects/42'
//	curl 'localhost:8080/v1/healthz'
//	curl 'localhost:8080/v1/metrics'
//	curl -XPOST localhost:8080/v1/objects -d '{"tags":["sunset","beach"],"month":5}'
//
// The pre-v1 unversioned routes still answer but are deprecated; see the
// server package docs.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"figfusion/internal/dataset"
	"figfusion/internal/index"
	"figfusion/internal/retrieval"
	"figfusion/internal/server"
	"figfusion/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figserver: ")
	opts := server.DefaultOptions()
	opts.Flags(flag.CommandLine)
	flag.Parse()
	if err := opts.Validate(); err != nil {
		log.Fatal(err)
	}

	var d *dataset.Dataset
	var err error
	if opts.Data != "" {
		f, ferr := os.Open(opts.Data)
		if ferr != nil {
			log.Fatal(ferr)
		}
		d, err = dataset.Load(f)
		f.Close()
	} else {
		cfg := dataset.DefaultConfig()
		cfg.Seed = opts.Seed
		cfg.NumObjects = opts.Objects
		d, err = dataset.Generate(cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	model := d.Model()
	model.TrainThresholds(200, 0.35, rand.New(rand.NewSource(opts.Seed+13)))
	pruning, err := opts.PruningMode()
	if err != nil {
		log.Fatal(err) // unreachable after Validate; kept for direct callers
	}
	retrievalCfg := retrieval.Config{Workers: opts.Workers, CandidateCap: opts.CandidateCap, Pruning: pruning}

	var srv *server.Server
	if opts.Shards > 1 {
		cfg := shard.Config{Shards: opts.Shards, Retrieval: retrievalCfg}
		var router *shard.Router
		if opts.Index != "" {
			r, man, lerr := shard.Load(model, cfg, opts.Index)
			if lerr != nil {
				log.Fatal(lerr)
			}
			router = r
			log.Printf("loaded snapshot set %s: %d shards, cut at %d objects", opts.Index, man.Shards, man.Objects)
		} else {
			router, err = shard.NewRouter(model, cfg)
			if err != nil {
				log.Fatal(err)
			}
		}
		for _, si := range router.ShardInfos() {
			log.Printf("shard %d: %d objects, %d cliques, %d postings", si.Shard, si.Objects, si.Cliques, si.Postings)
		}
		srv = server.NewSharded(router, opts)
	} else {
		engineCfg := retrievalCfg
		if opts.Index != "" {
			f, ferr := os.Open(opts.Index)
			if ferr != nil {
				log.Fatal(ferr)
			}
			prebuilt, lerr := index.Load(f)
			f.Close()
			if lerr != nil {
				log.Fatal(lerr)
			}
			engineCfg.Index = prebuilt
			if ls := prebuilt.LoadStats(); ls != nil {
				log.Printf("loaded index: %d cliques (%s snapshot, %d bytes, %.1f ms, %d loader worker(s))",
					prebuilt.NumCliques(), ls.Format, ls.Bytes, ls.WallMillis, ls.Workers)
			} else {
				log.Printf("loaded index: %d cliques", prebuilt.NumCliques())
			}
		}
		engine, eerr := retrieval.NewEngine(model, engineCfg)
		if eerr != nil {
			log.Fatal(eerr)
		}
		srv = server.New(engine, opts)
	}

	httpSrv := &http.Server{
		Addr:              opts.Addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("serving %d objects on %s (%d shard(s), query timeout %s, metrics %v)",
		d.Corpus.Len(), opts.Addr, opts.Shards, opts.QueryTimeout, opts.Metrics)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // restore default signal behaviour: a second signal kills immediately
	log.Printf("signal received, draining (timeout %s)", opts.Drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), opts.Drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Printf("drained, bye")
}
