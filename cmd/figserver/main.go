// Command figserver serves FIG similarity search over a versioned
// HTTP/JSON API: it loads (or generates) a corpus, builds the engine — a
// single engine or a scatter-gather shard router — and listens for
// search, inspection, ingestion and observability requests until
// SIGINT/SIGTERM, then drains in-flight requests and exits.
//
// All flags parse into one server.Options (see its Flags method); the
// defaults come from server.DefaultOptions, so the flag surface and the
// struct cannot drift apart.
//
// Usage:
//
//	figserver -addr :8080 -data corpus.gob
//	figserver -addr :8080 -objects 5000        # generate on the fly
//	figserver -addr :8080 -shards 4            # scatter-gather serving
//	figserver -data corpus.gob -shards 4 -index snap   # cold-start from figdata -shards snapshots
//	figserver -query-timeout 250ms -pprof      # bounded queries + profiling
//
// Multi-node serving splits the corpus across shard processes behind a
// router, all sharing one -nodes list (and one dataset):
//
//	figserver -role shard  -addr :8081 -data corpus.gob -nodes localhost:8081,localhost:8082 -node-name localhost:8081
//	figserver -role shard  -addr :8082 -data corpus.gob -nodes localhost:8081,localhost:8082 -node-name localhost:8082
//	figserver -role router -addr :8080 -data corpus.gob -nodes localhost:8081,localhost:8082
//
// A replacement shard node can bootstrap its index from a live peer
// instead of building it: add -bootstrap http://localhost:8081.
//
//	curl 'localhost:8080/v1/search?text=sunset&k=5'
//	curl 'localhost:8080/v1/search?id=42'
//	curl 'localhost:8080/v1/objects/42'
//	curl 'localhost:8080/v1/healthz'
//	curl 'localhost:8080/v1/metrics'
//	curl -XPOST localhost:8080/v1/objects -d '{"tags":["sunset","beach"],"month":5}'
//
// The pre-v1 unversioned routes still answer but are deprecated; see the
// server package docs.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"figfusion/internal/cluster"
	"figfusion/internal/dataset"
	"figfusion/internal/index"
	"figfusion/internal/retrieval"
	"figfusion/internal/server"
	"figfusion/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figserver: ")
	opts := server.DefaultOptions()
	opts.Flags(flag.CommandLine)
	flag.Parse()
	if err := opts.Validate(); err != nil {
		log.Fatal(err)
	}

	var d *dataset.Dataset
	var err error
	if opts.Data != "" {
		f, ferr := os.Open(opts.Data)
		if ferr != nil {
			log.Fatal(ferr)
		}
		d, err = dataset.Load(f)
		f.Close()
	} else {
		cfg := dataset.DefaultConfig()
		cfg.Seed = opts.Seed
		cfg.NumObjects = opts.Objects
		d, err = dataset.Generate(cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	model := d.Model()
	model.TrainThresholds(200, 0.35, rand.New(rand.NewSource(opts.Seed+13)))
	pruning, err := opts.PruningMode()
	if err != nil {
		log.Fatal(err) // unreachable after Validate; kept for direct callers
	}
	retrievalCfg := retrieval.Config{Workers: opts.Workers, CandidateCap: opts.CandidateCap, Pruning: pruning}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var srv *server.Server
	switch opts.Role {
	case "router":
		names := opts.NodeList()
		nodes := make([]cluster.NodeConfig, len(names))
		for i, name := range names {
			nodes[i] = cluster.NodeConfig{Name: name, Backend: cluster.NewHTTPBackend(name)}
		}
		cl, cerr := cluster.New(cluster.Config{
			Mirror:        model,
			Nodes:         nodes,
			HedgeAfter:    opts.HedgeAfter,
			ProbeInterval: opts.ProbeInterval,
		})
		if cerr != nil {
			log.Fatal(cerr)
		}
		defer cl.Close()
		cl.Start(ctx)
		log.Printf("routing over %d nodes: %v (hedge-after %s)", len(names), names, opts.HedgeAfter)
		srv = server.NewCluster(cl, opts)
	case "shard":
		assign, aerr := cluster.NewAssignment(opts.NodeList())
		if aerr != nil {
			log.Fatal(aerr)
		}
		me, aerr := assign.Index(opts.NodeName)
		if aerr != nil {
			log.Fatal(aerr)
		}
		cfg := shard.Config{Shards: opts.Shards, Retrieval: retrievalCfg, Owns: assign.Owns(me)}
		var router *shard.Router
		switch {
		case opts.Bootstrap != "":
			rc, ferr := cluster.FetchSnapshot(ctx, opts.Bootstrap)
			if ferr != nil {
				log.Fatal(ferr)
			}
			r, man, lerr := shard.LoadSnapshotStream(model, cfg, rc)
			rc.Close()
			if lerr != nil {
				log.Fatal(lerr)
			}
			router = r
			log.Printf("bootstrapped from %s: %d shards, cut at %d objects", opts.Bootstrap, man.Shards, man.Objects)
		case opts.Index != "":
			r, man, lerr := shard.Load(model, cfg, opts.Index)
			if lerr != nil {
				log.Fatal(lerr)
			}
			router = r
			log.Printf("loaded snapshot set %s: %d shards, cut at %d objects", opts.Index, man.Shards, man.Objects)
		default:
			router, err = shard.NewRouter(model, cfg)
			if err != nil {
				log.Fatal(err)
			}
		}
		owned := 0
		for _, si := range router.ShardInfos() {
			owned += si.Objects
		}
		log.Printf("node %s (%d of %d): %d of %d objects owned", opts.NodeName, me, assign.Len(), owned, d.Corpus.Len())
		srv = server.NewSharded(router, opts)
	default:
		if opts.Shards > 1 {
			cfg := shard.Config{Shards: opts.Shards, Retrieval: retrievalCfg}
			var router *shard.Router
			if opts.Index != "" {
				r, man, lerr := shard.Load(model, cfg, opts.Index)
				if lerr != nil {
					log.Fatal(lerr)
				}
				router = r
				log.Printf("loaded snapshot set %s: %d shards, cut at %d objects", opts.Index, man.Shards, man.Objects)
			} else {
				router, err = shard.NewRouter(model, cfg)
				if err != nil {
					log.Fatal(err)
				}
			}
			for _, si := range router.ShardInfos() {
				log.Printf("shard %d: %d objects, %d cliques, %d postings", si.Shard, si.Objects, si.Cliques, si.Postings)
			}
			srv = server.NewSharded(router, opts)
		} else {
			engineCfg := retrievalCfg
			if opts.Index != "" {
				f, ferr := os.Open(opts.Index)
				if ferr != nil {
					log.Fatal(ferr)
				}
				prebuilt, lerr := index.Load(f)
				f.Close()
				if lerr != nil {
					log.Fatal(lerr)
				}
				engineCfg.Index = prebuilt
				if ls := prebuilt.LoadStats(); ls != nil {
					log.Printf("loaded index: %d cliques (%s snapshot, %d bytes, %.1f ms, %d loader worker(s))",
						prebuilt.NumCliques(), ls.Format, ls.Bytes, ls.WallMillis, ls.Workers)
				} else {
					log.Printf("loaded index: %d cliques", prebuilt.NumCliques())
				}
			}
			engine, eerr := retrieval.NewEngine(model, engineCfg)
			if eerr != nil {
				log.Fatal(eerr)
			}
			srv = server.New(engine, opts)
		}
	}

	httpSrv := &http.Server{
		Addr:              opts.Addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("serving %d objects on %s (%d shard(s), query timeout %s, metrics %v)",
		d.Corpus.Len(), opts.Addr, opts.Shards, opts.QueryTimeout, opts.Metrics)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // restore default signal behaviour: a second signal kills immediately
	log.Printf("signal received, draining (timeout %s)", opts.Drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), opts.Drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Printf("drained, bye")
}
