package main

import (
	"fmt"

	"figfusion/internal/experiments"
)

// runPerf measures the retrieval query path and appends the run to the
// JSON file at path (creating it if absent).
func runPerf(path, label string, opts experiments.Options, candidateCap int) error {
	run, err := experiments.RetrievalPerf(opts, label, candidateCap)
	if err != nil {
		return err
	}
	total, err := experiments.AppendBenchRun(path,
		"retrieval query path: concurrent indexed Search + SearchTA",
		fmt.Sprintf("go run ./cmd/figbench -perf %s -scale %d -queries %d -seed %d", path, opts.Scale, opts.Queries, opts.Seed),
		run)
	if err != nil {
		return err
	}
	for _, r := range run.Results {
		fmt.Printf("%-34s %10.0f ns/op %8d allocs/op %12.1f queries/sec\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.QueriesPerSec)
	}
	fmt.Printf("appended run %q to %s (%d runs total)\n", label, path, total)
	return nil
}

// runShardPerf measures scatter-gather search throughput across shard
// counts and appends the run to the JSON file at path (creating it if
// absent).
func runShardPerf(path, label string, opts experiments.Options) error {
	run, err := experiments.ShardPerf(opts, label)
	if err != nil {
		return err
	}
	total, err := experiments.AppendBenchRun(path,
		"sharded serving: scatter-gather Search at 1/2/4/NumCPU shards vs the single-engine baseline",
		fmt.Sprintf("go run ./cmd/figbench -shardperf %s -scale %d -queries %d -seed %d", path, opts.Scale, opts.Queries, opts.Seed),
		run)
	if err != nil {
		return err
	}
	for _, r := range run.Results {
		fmt.Printf("%-30s %10.0f ns/op %12.1f queries/sec\n", r.Name, r.NsPerOp, r.QueriesPerSec)
	}
	fmt.Printf("appended run %q to %s (%d runs total)\n", label, path, total)
	return nil
}

// runBuildPerf measures the offline build path phase by phase and appends
// the run to the JSON file at path (creating it if absent).
func runBuildPerf(path, label string, opts experiments.Options) error {
	run, err := experiments.BuildPerf(opts, label)
	if err != nil {
		return err
	}
	total, err := experiments.AppendBenchRun(path,
		"engine build path: vocabulary k-means, stats+thresholds, clique index build+weighting, lambda coordinate ascent",
		fmt.Sprintf("go run ./cmd/figbench -buildperf %s -scale %d -trainqueries %d -seed %d", path, opts.Scale, opts.TrainQueries, opts.Seed),
		run)
	if err != nil {
		return err
	}
	for _, p := range run.Phases {
		fmt.Printf("%-18s serial %9.1f ms   workers=%d %9.1f ms   speedup %.2fx\n",
			p.Name, p.SerialMs, run.Workers, p.ParallelMs, p.Speedup)
	}
	fmt.Printf("%-18s serial %9.1f ms   workers=%d %9.1f ms   speedup %.2fx\n",
		"total", run.SerialTotalMs, run.Workers, run.ParallelTotalMs, run.Speedup)
	fmt.Printf("appended run %q to %s (%d runs total)\n", label, path, total)
	return nil
}
