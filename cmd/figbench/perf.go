package main

import (
	"context"
	"fmt"
	"strings"

	"figfusion/internal/experiments"
	"figfusion/internal/retrieval"
)

// runPerf measures the retrieval query path and appends the run to the
// JSON file at path (creating it if absent). With gatePct > 0 it also
// acts as a regression gate against the most recent recorded run of the
// same workload shape (scale, candidate cap, pruning mode — runs at other
// shapes interleave in the file without poisoning the comparison): the
// new run's serial search throughput must not drop more than gatePct
// percent, and its serial allocations per query must not regress more
// than 25% (with a four-allocation absolute grace, so a blip on a tiny
// count does not fail the build).
func runPerf(path, label string, opts experiments.Options, candidateCap int, gatePct float64, pruning retrieval.PruningMode) error {
	run, err := experiments.RetrievalPerf(opts, label, candidateCap, pruning)
	if err != nil {
		return err
	}
	prev, havePrev, err := experiments.LastPerfRunMatching(path, run)
	if err != nil {
		return err
	}
	total, err := experiments.AppendBenchRun(path,
		"retrieval query path: concurrent indexed Search + SearchTA",
		fmt.Sprintf("go run ./cmd/figbench -perf %s -scale %d -queries %d -seed %d", path, opts.Scale, opts.Queries, opts.Seed),
		run)
	if err != nil {
		return err
	}
	printPerfRun(run)
	fmt.Printf("appended run %q to %s (%d runs total)\n", label, path, total)
	if gatePct > 0 && havePrev {
		prevQPS := perfResult(prev, "search/serial").QueriesPerSec
		newQPS := perfResult(run, "search/serial").QueriesPerSec
		if prevQPS > 0 && newQPS > 0 {
			drop := (prevQPS - newQPS) / prevQPS * 100
			fmt.Printf("perf gate: search/serial %.1f -> %.1f queries/sec (%+.1f%%, limit -%.0f%%)\n",
				prevQPS, newQPS, -drop, gatePct)
			if drop > gatePct {
				return fmt.Errorf("search/serial regressed %.1f%% (limit %.0f%%): %.1f -> %.1f queries/sec vs run %q",
					drop, gatePct, prevQPS, newQPS, prev.Label)
			}
		}
		prevAllocs := perfResult(prev, "search/serial").AllocsPerOp
		newAllocs := perfResult(run, "search/serial").AllocsPerOp
		if prevAllocs > 0 && newAllocs > 0 {
			fmt.Printf("perf gate: search/serial %d -> %d allocs/op (limit +25%%)\n", prevAllocs, newAllocs)
			if newAllocs > prevAllocs+prevAllocs/4 && newAllocs-prevAllocs > 4 {
				return fmt.Errorf("search/serial allocations regressed more than 25%%: %d -> %d allocs/op vs run %q",
					prevAllocs, newAllocs, prev.Label)
			}
		}
	}
	return nil
}

// runPrunePerf measures the query path once per pruning mode over one
// shared workload, appending each mode's run to the benchmark file as its
// own labelled series. With gate > 0 it requires the blockmax mode's
// serial TA throughput to reach at least gate times the off mode's — the
// speedup claim the pruned path exists for, enforced where the block
// skipping actually runs.
func runPrunePerf(path, label string, opts experiments.Options, candidateCap int, modesCSV string, gate float64) error {
	var modes []retrieval.PruningMode
	for _, tok := range strings.Split(modesCSV, ",") {
		mode, err := retrieval.ParsePruningMode(strings.TrimSpace(tok))
		if err != nil {
			return err
		}
		modes = append(modes, mode)
	}
	runs, err := experiments.PrunePerf(opts, label, candidateCap, modes)
	if err != nil {
		return err
	}
	qps := map[retrieval.PruningMode]float64{}
	for i, run := range runs {
		total, err := experiments.AppendBenchRun(path,
			"retrieval query path: concurrent indexed Search + SearchTA",
			fmt.Sprintf("go run ./cmd/figbench -perf %s -scale %d -queries %d -seed %d -perfprune %s", path, opts.Scale, opts.Queries, opts.Seed, modesCSV),
			run)
		if err != nil {
			return err
		}
		fmt.Printf("--- pruning=%s\n", modes[i])
		printPerfRun(run)
		fmt.Printf("appended run %q to %s (%d runs total)\n", run.Label, path, total)
		qps[modes[i]] = perfResult(run, "searchTA/serial").QueriesPerSec
	}
	if gate > 0 {
		off, blockmax := qps[retrieval.PruneOff], qps[retrieval.PruneBlockMax]
		if off <= 0 || blockmax <= 0 {
			return fmt.Errorf("prune gate needs both off and blockmax in the mode sweep, got %q", modesCSV)
		}
		speedup := blockmax / off
		fmt.Printf("prune gate: searchTA/serial off %.1f -> blockmax %.1f queries/sec (%.2fx, need %.2fx)\n",
			off, blockmax, speedup, gate)
		if speedup < gate {
			return fmt.Errorf("blockmax searchTA/serial speedup %.2fx below required %.2fx", speedup, gate)
		}
	}
	return nil
}

func printPerfRun(run *experiments.PerfRun) {
	for _, r := range run.Results {
		fmt.Printf("%-34s %10.0f ns/op %8d allocs/op %12.1f queries/sec\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.QueriesPerSec)
	}
	if run.PrecisionAt10 > 0 {
		fmt.Printf("%-34s %10.3f\n", "precision@10", run.PrecisionAt10)
	}
}

// perfResult extracts the named result from a run (zero value if absent).
func perfResult(run *experiments.PerfRun, name string) experiments.PerfResult {
	for _, r := range run.Results {
		if r.Name == name {
			return r
		}
	}
	return experiments.PerfResult{}
}

// runShardPerf measures scatter-gather search throughput across shard
// counts and appends the run to the JSON file at path (creating it if
// absent).
func runShardPerf(path, label string, opts experiments.Options) error {
	run, err := experiments.ShardPerf(opts, label)
	if err != nil {
		return err
	}
	total, err := experiments.AppendBenchRun(path,
		"sharded serving: scatter-gather Search at 1/2/4/NumCPU shards vs the single-engine baseline",
		fmt.Sprintf("go run ./cmd/figbench -shardperf %s -scale %d -queries %d -seed %d", path, opts.Scale, opts.Queries, opts.Seed),
		run)
	if err != nil {
		return err
	}
	for _, r := range run.Results {
		fmt.Printf("%-30s %10.0f ns/op %12.1f queries/sec\n", r.Name, r.NsPerOp, r.QueriesPerSec)
	}
	fmt.Printf("appended run %q to %s (%d runs total)\n", label, path, total)
	return nil
}

// runClusterPerf measures multi-node serving throughput — the cluster
// orchestrator over in-process LocalBackends and over loopback-HTTP
// backends against the single-engine baseline — and appends the run to
// the JSON file at path (creating it if absent).
func runClusterPerf(path, label string, opts experiments.Options) error {
	run, err := experiments.ClusterPerf(opts, label)
	if err != nil {
		return err
	}
	total, err := experiments.AppendBenchRun(path,
		"multi-node serving: scatter-gather Search over in-process vs loopback-HTTP backends vs the single-engine baseline",
		fmt.Sprintf("go run ./cmd/figbench -clusterperf %s -scale %d -queries %d -seed %d", path, opts.Scale, opts.Queries, opts.Seed),
		run)
	if err != nil {
		return err
	}
	for _, r := range run.Results {
		fmt.Printf("%-30s %10.0f ns/op %12.1f queries/sec\n", r.Name, r.NsPerOp, r.QueriesPerSec)
	}
	fmt.Printf("appended run %q to %s (%d runs total)\n", label, path, total)
	return nil
}

// runServePerf measures the live-traffic serving tier — closed-loop
// capacity, then open-loop overload at 2× that capacity against a real
// figserver — and appends the run to the JSON file at path (creating it
// if absent). Every run must satisfy the healthy-overload contract
// (explicit sheds, no non-shed errors, bounded admitted p99); with
// gatePct > 0 the closed-loop capacity additionally must not drop more
// than gatePct percent against the previous recorded run at the same
// scale and admission settings.
func runServePerf(path, label string, opts experiments.Options, gatePct float64) error {
	run, err := experiments.ServePerf(context.Background(), opts, label)
	if err != nil {
		return err
	}
	// The contract is absolute, not relative: even the first recorded run
	// must shed under overload and keep the admitted p99 bounded.
	if err := experiments.CheckServeRun(run, serveP99Bound); err != nil {
		return err
	}
	prev, havePrev, err := experiments.LastServeRunMatching(path, run)
	if err != nil {
		return err
	}
	total, err := experiments.AppendBenchRun(path,
		"live-traffic serving: closed-loop capacity, then open-loop overload at 2x capacity (shed rate + admitted p99)",
		fmt.Sprintf("go run ./cmd/figbench -serveperf %s -scale %d -seed %d", path, opts.Scale, opts.Seed),
		run)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %10.1f req/s %10.2f ms p50 %10.2f ms p99\n",
		"capacity", run.Closed.AchievedRate, run.Closed.P50Ms, run.Closed.P99Ms)
	fmt.Printf("%-10s %10.1f req/s %10.2f ms p50 %10.2f ms p99   shed %.1f%% (%d requests, server counted %d)\n",
		"overload", run.Overload.OfferedRate, run.Overload.P50Ms, run.Overload.P99Ms,
		100*run.Overload.ShedRate(), run.Overload.Shed, run.ShedRequests)
	fmt.Printf("appended run %q to %s (%d runs total)\n", label, path, total)
	if gatePct > 0 && havePrev {
		prevCap := prev.Closed.AchievedRate
		newCap := run.Closed.AchievedRate
		if prevCap > 0 {
			drop := (prevCap - newCap) / prevCap * 100
			fmt.Printf("serve gate: capacity %.1f -> %.1f req/s (%+.1f%%, limit -%.0f%%)\n",
				prevCap, newCap, -drop, gatePct)
			if drop > gatePct {
				return fmt.Errorf("closed-loop capacity dropped %.1f%% (limit %.0f%%): %.1f -> %.1f req/s vs run %q",
					drop, gatePct, prevCap, newCap, prev.Label)
			}
		}
	}
	return nil
}

// serveP99Bound is the absolute overload contract on the admitted p99:
// with a queue of MaxQueue behind MaxInflight slots, an admitted request
// waits at most ~(MaxQueue/MaxInflight + 1) service times, so 10× the
// uncontended p99 is comfortably past scheduling noise while still
// catching unbounded queueing.
const serveP99Bound = 10.0

// runLoadPerf measures index snapshot size and cold-start load time in
// both formats and appends the run to the JSON file at path (creating it
// if absent). With gatePct > 0 it also acts as a regression gate: the
// segment/parallel cold-start load time must not regress more than
// gatePct percent against the previous recorded run at the same scale.
func runLoadPerf(path, label string, opts experiments.Options, gatePct float64) error {
	run, err := experiments.LoadPerf(opts, label)
	if err != nil {
		return err
	}
	prev, havePrev, err := experiments.LastLoadRunMatching(path, run)
	if err != nil {
		return err
	}
	total, err := experiments.AppendBenchRun(path,
		"index cold start: snapshot bytes + load wall time, legacy gob vs serial/parallel binary segment",
		fmt.Sprintf("go run ./cmd/figbench -loadperf %s -scale %d -seed %d", path, opts.Scale, opts.Seed),
		run)
	if err != nil {
		return err
	}
	for _, r := range run.Results {
		fmt.Printf("%-18s %12d bytes %10.1f ms load %14d heap bytes\n", r.Name, r.Bytes, r.LoadMs, r.HeapBytes)
	}
	fmt.Printf("segment snapshot is %.2fx the gob size; cold start %.2fx faster than gob; parallel load %.2fx over serial\n",
		run.SizeRatio, run.SegmentVsGob, run.ParallelSpeedup)
	fmt.Printf("appended run %q to %s (%d runs total)\n", label, path, total)
	if gatePct > 0 && havePrev {
		prevMs := prevLoadMs(prev)
		newMs := prevLoadMs(run)
		if prevMs > 0 && newMs > 0 {
			regress := (newMs - prevMs) / prevMs * 100
			fmt.Printf("load gate: segment/parallel %.1f -> %.1f ms (%+.1f%%, limit +%.0f%%)\n",
				prevMs, newMs, regress, gatePct)
			if regress > gatePct {
				return fmt.Errorf("segment/parallel cold-start load regressed %.1f%% (limit %.0f%%): %.1f -> %.1f ms vs run %q",
					regress, gatePct, prevMs, newMs, prev.Label)
			}
		}
	}
	return nil
}

// prevLoadMs extracts the gated metric: the parallel segment load time.
func prevLoadMs(run *experiments.LoadRun) float64 {
	for _, r := range run.Results {
		if r.Name == "segment/parallel" {
			return r.LoadMs
		}
	}
	return 0
}

// runBuildPerf measures the offline build path phase by phase and appends
// the run to the JSON file at path (creating it if absent).
func runBuildPerf(path, label string, opts experiments.Options) error {
	run, err := experiments.BuildPerf(opts, label)
	if err != nil {
		return err
	}
	total, err := experiments.AppendBenchRun(path,
		"engine build path: vocabulary k-means, stats+thresholds, clique index build+weighting, lambda coordinate ascent",
		fmt.Sprintf("go run ./cmd/figbench -buildperf %s -scale %d -trainqueries %d -seed %d", path, opts.Scale, opts.TrainQueries, opts.Seed),
		run)
	if err != nil {
		return err
	}
	for _, p := range run.Phases {
		fmt.Printf("%-18s serial %9.1f ms   workers=%d %9.1f ms   speedup %.2fx\n",
			p.Name, p.SerialMs, run.Workers, p.ParallelMs, p.Speedup)
	}
	fmt.Printf("%-18s serial %9.1f ms   workers=%d %9.1f ms   speedup %.2fx\n",
		"total", run.SerialTotalMs, run.Workers, run.ParallelTotalMs, run.Speedup)
	fmt.Printf("appended run %q to %s (%d runs total)\n", label, path, total)
	return nil
}
