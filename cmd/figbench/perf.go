package main

import (
	"fmt"

	"figfusion/internal/experiments"
)

// runPerf measures the retrieval query path and appends the run to the
// JSON file at path (creating it if absent). With gatePct > 0 it also
// acts as a regression gate: the new run's serial search throughput must
// not drop more than gatePct percent below the previous recorded run.
func runPerf(path, label string, opts experiments.Options, candidateCap int, gatePct float64) error {
	var prev experiments.PerfRun
	havePrev, err := experiments.LastRun(path, &prev)
	if err != nil {
		return err
	}
	run, err := experiments.RetrievalPerf(opts, label, candidateCap)
	if err != nil {
		return err
	}
	total, err := experiments.AppendBenchRun(path,
		"retrieval query path: concurrent indexed Search + SearchTA",
		fmt.Sprintf("go run ./cmd/figbench -perf %s -scale %d -queries %d -seed %d", path, opts.Scale, opts.Queries, opts.Seed),
		run)
	if err != nil {
		return err
	}
	for _, r := range run.Results {
		fmt.Printf("%-34s %10.0f ns/op %8d allocs/op %12.1f queries/sec\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.QueriesPerSec)
	}
	fmt.Printf("appended run %q to %s (%d runs total)\n", label, path, total)
	if gatePct > 0 && havePrev {
		prevQPS := serialQPS(&prev)
		newQPS := serialQPS(run)
		if prevQPS > 0 && newQPS > 0 {
			drop := (prevQPS - newQPS) / prevQPS * 100
			fmt.Printf("perf gate: search/serial %.1f -> %.1f queries/sec (%+.1f%%, limit -%.0f%%)\n",
				prevQPS, newQPS, -drop, gatePct)
			if drop > gatePct {
				return fmt.Errorf("search/serial regressed %.1f%% (limit %.0f%%): %.1f -> %.1f queries/sec vs run %q",
					drop, gatePct, prevQPS, newQPS, prev.Label)
			}
		}
	}
	return nil
}

// serialQPS extracts the serial indexed-search throughput from a run.
func serialQPS(run *experiments.PerfRun) float64 {
	for _, r := range run.Results {
		if r.Name == "search/serial" {
			return r.QueriesPerSec
		}
	}
	return 0
}

// runShardPerf measures scatter-gather search throughput across shard
// counts and appends the run to the JSON file at path (creating it if
// absent).
func runShardPerf(path, label string, opts experiments.Options) error {
	run, err := experiments.ShardPerf(opts, label)
	if err != nil {
		return err
	}
	total, err := experiments.AppendBenchRun(path,
		"sharded serving: scatter-gather Search at 1/2/4/NumCPU shards vs the single-engine baseline",
		fmt.Sprintf("go run ./cmd/figbench -shardperf %s -scale %d -queries %d -seed %d", path, opts.Scale, opts.Queries, opts.Seed),
		run)
	if err != nil {
		return err
	}
	for _, r := range run.Results {
		fmt.Printf("%-30s %10.0f ns/op %12.1f queries/sec\n", r.Name, r.NsPerOp, r.QueriesPerSec)
	}
	fmt.Printf("appended run %q to %s (%d runs total)\n", label, path, total)
	return nil
}

// runBuildPerf measures the offline build path phase by phase and appends
// the run to the JSON file at path (creating it if absent).
func runBuildPerf(path, label string, opts experiments.Options) error {
	run, err := experiments.BuildPerf(opts, label)
	if err != nil {
		return err
	}
	total, err := experiments.AppendBenchRun(path,
		"engine build path: vocabulary k-means, stats+thresholds, clique index build+weighting, lambda coordinate ascent",
		fmt.Sprintf("go run ./cmd/figbench -buildperf %s -scale %d -trainqueries %d -seed %d", path, opts.Scale, opts.TrainQueries, opts.Seed),
		run)
	if err != nil {
		return err
	}
	for _, p := range run.Phases {
		fmt.Printf("%-18s serial %9.1f ms   workers=%d %9.1f ms   speedup %.2fx\n",
			p.Name, p.SerialMs, run.Workers, p.ParallelMs, p.Speedup)
	}
	fmt.Printf("%-18s serial %9.1f ms   workers=%d %9.1f ms   speedup %.2fx\n",
		"total", run.SerialTotalMs, run.Workers, run.ParallelTotalMs, run.Speedup)
	fmt.Printf("appended run %q to %s (%d runs total)\n", label, path, total)
	return nil
}
