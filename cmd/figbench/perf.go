package main

import (
	"encoding/json"
	"fmt"
	"os"

	"figfusion/internal/experiments"
)

// perfFile is the on-disk shape of BENCH_retrieval.json: one benchmark
// identity plus an append-only list of runs, one per measured revision, so
// the file records the query path's performance trajectory across PRs.
type perfFile struct {
	Benchmark string                `json:"benchmark"`
	Command   string                `json:"command"`
	Runs      []experiments.PerfRun `json:"runs"`
}

// runPerf measures the retrieval query path and appends the run to the
// JSON file at path (creating it if absent).
func runPerf(path, label string, opts experiments.Options, candidateCap int) error {
	run, err := experiments.RetrievalPerf(opts, label, candidateCap)
	if err != nil {
		return err
	}
	pf := perfFile{
		Benchmark: "retrieval query path: concurrent indexed Search + SearchTA",
		Command:   fmt.Sprintf("go run ./cmd/figbench -perf %s -scale %d -queries %d -seed %d", path, opts.Scale, opts.Queries, opts.Seed),
	}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &pf); err != nil {
			return fmt.Errorf("perf: %s exists but is not a perf file: %w", path, err)
		}
	}
	pf.Runs = append(pf.Runs, *run)
	out, err := json.MarshalIndent(pf, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	for _, r := range run.Results {
		fmt.Printf("%-34s %10.0f ns/op %8d allocs/op %12.1f queries/sec\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.QueriesPerSec)
	}
	fmt.Printf("appended run %q to %s (%d runs total)\n", label, path, len(pf.Runs))
	return nil
}
