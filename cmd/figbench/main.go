// Command figbench regenerates the paper's evaluation figures as text
// tables. Each figure of Section 5 has a driver in internal/experiments;
// figbench selects, scales and prints them.
//
// Usage:
//
//	figbench                      # all figures at laptop scale
//	figbench -fig 7               # one figure
//	figbench -fig 5,7 -scale 5000 # bigger corpus
//
// The -scale flags trade fidelity for runtime; the paper's corpus sizes
// (236,600 / 207,909 objects) are reachable but take correspondingly long.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"strings"
	"time"

	"figfusion/internal/experiments"
	"figfusion/internal/retrieval"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figbench: ")
	var (
		figs     = flag.String("fig", "all", "comma-separated figures (5,6,7,8,9,10,11,rank,music) or 'all'")
		scale    = flag.Int("scale", 1200, "retrieval corpus size |D_ret| (paper: 236600)")
		recScale = flag.Int("recscale", 1500, "recommendation corpus size |D_rec| (paper: 207909)")
		queries  = flag.Int("queries", 20, "evaluation queries (paper: 20)")
		users    = flag.Int("users", 30, "evaluation users (paper: 279)")
		seed     = flag.Int64("seed", 1, "seed")

		perf      = flag.String("perf", "", "measure the retrieval query path and append the run to this JSON file (e.g. BENCH_retrieval.json); skips the figures")
		buildPerf = flag.String("buildperf", "", "measure the offline build path (vocabulary, thresholds, index, lambda training) and append the run to this JSON file (e.g. BENCH_build.json); skips the figures")
		shardPerf = flag.String("shardperf", "", "measure scatter-gather search throughput at 1/2/4/NumCPU shards against the single-engine baseline and append the run to this JSON file (e.g. BENCH_shard.json); skips the figures")
		loadPerf  = flag.String("loadperf", "", "measure index snapshot size and cold-start load time (legacy gob vs serial/parallel segment) and append the run to this JSON file (e.g. BENCH_load.json); skips the figures")
		clusPerf  = flag.String("clusterperf", "", "measure multi-node scatter-gather throughput (cluster over in-process vs loopback-HTTP backends vs the single-engine baseline) and append the run to this JSON file (e.g. BENCH_cluster.json); skips the figures")
		servePerf = flag.String("serveperf", "", "measure live-traffic serving (closed-loop capacity, then open-loop overload at 2x capacity; sheds and admitted p99 must satisfy the overload contract) and append the run to this JSON file (e.g. BENCH_serve.json); skips the figures")
		serveGate = flag.Float64("servegate", 0, "fail the -serveperf run if closed-loop capacity drops more than this percentage vs the previous recorded run at the same scale and admission settings (0 = contract check only)")
		loadGate  = flag.Float64("loadgate", 0, "fail the -loadperf run if segment/parallel cold-start load time regresses more than this percentage vs the previous recorded run at the same scale (0 = record only)")
		perfLabel = flag.String("perflabel", "", "label recorded with the -perf/-buildperf run (default: go version + GOMAXPROCS)")
		perfCap   = flag.Int("perfcap", 0, "CandidateCap for the -perf engine (0 = uncapped)")
		perfGate  = flag.Float64("perfgate", 0, "fail the -perf run if search/serial queries/sec drops more than this percentage below the previous recorded run of the same workload shape (0 = record only)")
		perfPrune = flag.String("perfprune", "", "comma-separated pruning modes (off,blockmax,blockmax-quantized) to sweep over one shared workload with -perf, recording one labelled run per mode")
		pruneGate = flag.Float64("prunegate", 0, "with -perfprune: fail unless blockmax searchTA/serial reaches this multiple of off's queries/sec (0 = record only)")
		trainQ    = flag.Int("trainqueries", 20, "training queries for the lambda coordinate ascent (paper: 20)")
	)
	flag.Parse()

	opts := experiments.DefaultOptions()
	opts.Scale = *scale
	opts.RecScale = *recScale
	opts.Queries = *queries
	opts.TrainQueries = *trainQ
	opts.RecUsers = *users
	opts.Seed = *seed

	if *perf != "" || *buildPerf != "" || *shardPerf != "" || *loadPerf != "" || *clusPerf != "" || *servePerf != "" {
		label := *perfLabel
		if label == "" {
			label = fmt.Sprintf("%s GOMAXPROCS=%d", runtime.Version(), runtime.GOMAXPROCS(0))
		}
		if *perf != "" && *perfPrune != "" {
			if err := runPrunePerf(*perf, label, opts, *perfCap, *perfPrune, *pruneGate); err != nil {
				log.Fatalf("perfprune: %v", err)
			}
		} else if *perf != "" {
			// The tracked baseline series measures the unpruned engine;
			// pruning-mode series are recorded via -perfprune.
			if err := runPerf(*perf, label, opts, *perfCap, *perfGate, retrieval.PruneOff); err != nil {
				log.Fatalf("perf: %v", err)
			}
		}
		if *buildPerf != "" {
			if err := runBuildPerf(*buildPerf, label, opts); err != nil {
				log.Fatalf("buildperf: %v", err)
			}
		}
		if *shardPerf != "" {
			if err := runShardPerf(*shardPerf, label, opts); err != nil {
				log.Fatalf("shardperf: %v", err)
			}
		}
		if *loadPerf != "" {
			if err := runLoadPerf(*loadPerf, label, opts, *loadGate); err != nil {
				log.Fatalf("loadperf: %v", err)
			}
		}
		if *clusPerf != "" {
			if err := runClusterPerf(*clusPerf, label, opts); err != nil {
				log.Fatalf("clusterperf: %v", err)
			}
		}
		if *servePerf != "" {
			if err := runServePerf(*servePerf, label, opts, *serveGate); err != nil {
				log.Fatalf("serveperf: %v", err)
			}
		}
		return
	}

	type driver struct {
		id  string
		run func() (string, error)
	}
	table := func(f func(experiments.Options) (*experiments.Table, error)) func() (string, error) {
		return func() (string, error) {
			t, err := f(opts)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		}
	}
	drivers := []driver{
		{"5", table(experiments.Figure5)},
		{"6", func() (string, error) { return experiments.Figure6(opts) }},
		{"7", table(experiments.Figure7)},
		{"8", table(experiments.Figure8)},
		{"9", table(experiments.Figure9)},
		{"10", table(experiments.Figure10)},
		{"11", table(experiments.Figure11)},
		{"rank", table(experiments.RankMetricsTable)},
		{"music", table(experiments.MusicTable)},
	}

	want := map[string]bool{}
	if *figs == "all" {
		for _, d := range drivers {
			want[d.id] = true
		}
	} else {
		for _, id := range strings.Split(*figs, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	ran := 0
	for _, d := range drivers {
		if !want[d.id] {
			continue
		}
		ran++
		start := time.Now()
		out, err := d.run()
		if err != nil {
			log.Fatalf("figure %s: %v", d.id, err)
		}
		fmt.Printf("%s\n(%.1fs)\n\n", strings.TrimRight(out, "\n"), time.Since(start).Seconds())
	}
	if ran == 0 {
		log.Fatalf("no figure matched -fig=%q (valid: 5,6,7,8,9,10,11,rank,music)", *figs)
	}
}
