// Command figstats prints diagnostics for a corpus and its retrieval
// structures: feature counts by modality, the Section 3.5 pair-wise
// correlation table summaries, and the clique inverted-index shape. Useful
// when tuning generator parameters or correlation thresholds.
//
// Usage:
//
//	figstats -data corpus.gob
//	figstats -objects 2000
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"

	"figfusion/internal/corr"
	"figfusion/internal/dataset"
	"figfusion/internal/fig"
	"figfusion/internal/index"
	"figfusion/internal/media"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figstats: ")
	var (
		data    = flag.String("data", "", "corpus gob written by figdata (empty = generate)")
		objects = flag.Int("objects", 2000, "corpus size when generating")
		seed    = flag.Int64("seed", 1, "generation seed")
		noIndex = flag.Bool("noindex", false, "skip index construction")
	)
	flag.Parse()

	var d *dataset.Dataset
	var err error
	if *data != "" {
		f, ferr := os.Open(*data)
		if ferr != nil {
			log.Fatal(ferr)
		}
		d, err = dataset.Load(f)
		f.Close()
	} else {
		cfg := dataset.DefaultConfig()
		cfg.Seed = *seed
		cfg.NumObjects = *objects
		d, err = dataset.Generate(cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	corpus := d.Corpus
	fmt.Printf("corpus: %d objects, %d distinct features\n", corpus.Len(), corpus.Dict.Len())

	// Feature counts and density by modality.
	var featCount, occCount [media.NumKinds]int
	for fid := media.FID(0); int(fid) < corpus.Dict.Len(); fid++ {
		featCount[corpus.KindOf(fid)]++
	}
	totalMass := 0
	for _, o := range corpus.Objects {
		for i, fid := range o.Feats {
			occCount[corpus.KindOf(fid)] += int(o.Counts[i])
			totalMass += int(o.Counts[i])
		}
	}
	fmt.Printf("\n%-8s %10s %12s %14s\n", "kind", "features", "occurrences", "mean-per-obj")
	for k := media.Kind(0); int(k) < media.NumKinds; k++ {
		if featCount[k] == 0 {
			continue
		}
		fmt.Printf("%-8s %10d %12d %14.2f\n", k, featCount[k], occCount[k],
			float64(occCount[k])/float64(corpus.Len()))
	}

	// Correlation tables.
	model := d.Model()
	rng := rand.New(rand.NewSource(*seed + 13))
	model.TrainThresholds(200, 0.35, rng)
	fmt.Printf("\ncorrelation tables (Section 3.5), 200 sampled objects:\n%s",
		corr.FormatTableStats(model.TableStats(200, rng)))

	if *noIndex {
		return
	}
	inv := index.Build(model, fig.Options{}, fig.EnumerateOptions{})
	fmt.Printf("\nclique index: %d cliques, %d postings (%.2f per clique)\n",
		inv.NumCliques(), inv.Postings(), float64(inv.Postings())/float64(max(1, inv.NumCliques())))
	bySize := map[int]int{}
	for _, e := range inv.Entries() {
		bySize[len(e.Feats)]++
	}
	var sizes []int
	for s := range bySize {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	for _, s := range sizes {
		fmt.Printf("  %d-feature cliques: %d\n", s, bySize[s])
	}
	top := inv.Entries()
	if len(top) > 5 {
		top = top[:5]
	}
	fmt.Println("  longest posting lists:")
	for _, e := range top {
		names := make([]string, len(e.Feats))
		for i, fid := range e.Feats {
			names[i] = corpus.Dict.Feature(fid).String()
		}
		fmt.Printf("    %v → %d objects (CorS %.3f)\n", names, len(e.Objects), e.CorS)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
