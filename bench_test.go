package figfusion

// The benchmark harness regenerates every figure of the paper's evaluation
// (one benchmark per figure) and adds ablation benches for the design
// choices called out in DESIGN.md. Figure benches report wall-clock per
// full experiment at a reduced scale; the ablation benches report both
// time and, via ReportMetric, the retrieval quality each variant achieves,
// so accuracy/cost trade-offs are visible in one run:
//
//	go test -bench=. -benchmem
//
// cmd/figbench runs the same drivers at configurable scale for the
// EXPERIMENTS.md numbers.

import (
	"math/rand"
	"sync"
	"testing"

	"figfusion/internal/dataset"
	"figfusion/internal/eval"
	"figfusion/internal/experiments"
	"figfusion/internal/fig"
	"figfusion/internal/mrf"
	"figfusion/internal/retrieval"
	"figfusion/internal/topk"
)

// benchOptions keep the per-figure benches to a few seconds each.
func benchOptions() experiments.Options {
	return experiments.Options{
		Seed:         1,
		Scale:        400,
		Queries:      8,
		TrainQueries: 8,
		RecScale:     500,
		RecUsers:     8,
	}
}

func benchFigure(b *testing.B, run func(experiments.Options) (*experiments.Table, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := run(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5 regenerates the feature-combination study (Figure 5).
func BenchmarkFigure5(b *testing.B) { benchFigure(b, experiments.Figure5) }

// BenchmarkFigure6 regenerates the qualitative query example (Figure 6).
func BenchmarkFigure6(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7 regenerates the retrieval baseline comparison (Figure 7).
func BenchmarkFigure7(b *testing.B) { benchFigure(b, experiments.Figure7) }

// BenchmarkFigure8 regenerates the precision-vs-size study (Figure 8).
func BenchmarkFigure8(b *testing.B) { benchFigure(b, experiments.Figure8) }

// BenchmarkFigure9 regenerates the time-per-query study (Figure 9).
func BenchmarkFigure9(b *testing.B) { benchFigure(b, experiments.Figure9) }

// BenchmarkFigure10 regenerates the decay-parameter sweep (Figure 10).
func BenchmarkFigure10(b *testing.B) { benchFigure(b, experiments.Figure10) }

// BenchmarkFigure11 regenerates the recommendation comparison (Figure 11).
func BenchmarkFigure11(b *testing.B) { benchFigure(b, experiments.Figure11) }

// ---- Ablation fixtures ----------------------------------------------------

var (
	ablOnce    sync.Once
	ablData    *dataset.Dataset
	ablQueries []ObjectID
)

func ablationFixture(b *testing.B) (*dataset.Dataset, []ObjectID) {
	b.Helper()
	ablOnce.Do(func() {
		cfg := dataset.DefaultConfig()
		cfg.NumObjects = 500
		cfg.NumTopics = 12
		var err error
		ablData, err = dataset.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ablQueries = ablData.SampleQueries(8, rand.New(rand.NewSource(3)))
	})
	return ablData, ablQueries
}

// measureSearch times one search function over the fixture queries and
// reports its mean Precision@10 as a custom metric.
func measureSearch(b *testing.B, d *dataset.Dataset, queries []ObjectID,
	search func(q *Object, k int, exclude ObjectID) []topk.Item) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	var precision float64
	for i := 0; i < b.N; i++ {
		precision = 0
		for _, qid := range queries {
			q := d.Corpus.Object(qid)
			results := search(q, 10, qid)
			rel := 0
			for _, it := range results {
				if dataset.Relevant(q, d.Corpus.Object(it.ID)) {
					rel++
				}
			}
			if len(results) > 0 {
				precision += float64(rel) / float64(len(results))
			}
		}
	}
	b.ReportMetric(precision/float64(len(queries)), "P@10")
}

// BenchmarkAblationCliqueSize sweeps the clique feature cap — the
// accuracy/cost trade-off of Eq. 4's clique sum.
func BenchmarkAblationCliqueSize(b *testing.B) {
	d, queries := ablationFixture(b)
	for _, maxFeats := range []int{1, 2, 3, 4} {
		b.Run(sizeName(maxFeats), func(b *testing.B) {
			engine, err := retrieval.NewEngine(d.Model(), retrieval.Config{
				EnumOpts: fig.EnumerateOptions{MaxFeatures: maxFeats},
			})
			if err != nil {
				b.Fatal(err)
			}
			measureSearch(b, d, queries, engine.Search)
		})
	}
}

func sizeName(n int) string { return "maxFeatures=" + string(rune('0'+n)) }

// BenchmarkAblationAlpha sweeps the Eq. 7 smoothing trade-off; α = 0
// disables the correlation-smoothing term entirely.
func BenchmarkAblationAlpha(b *testing.B) {
	d, queries := ablationFixture(b)
	for _, tc := range []struct {
		name  string
		alpha float64
	}{{"alpha=0", 0}, {"alpha=0.25", 0.25}, {"alpha=0.5", 0.5}} {
		b.Run(tc.name, func(b *testing.B) {
			params := mrf.DefaultParams()
			params.Alpha = tc.alpha
			engine, err := retrieval.NewEngine(d.Model(), retrieval.Config{Params: params})
			if err != nil {
				b.Fatal(err)
			}
			measureSearch(b, d, queries, engine.Search)
		})
	}
}

// BenchmarkAblationCorS toggles the Eq. 9 clique-importance weighting.
func BenchmarkAblationCorS(b *testing.B) {
	d, queries := ablationFixture(b)
	for _, tc := range []struct {
		name string
		on   bool
	}{{"CorS=on", true}, {"CorS=off", false}} {
		b.Run(tc.name, func(b *testing.B) {
			params := mrf.DefaultParams()
			params.UseCorS = tc.on
			engine, err := retrieval.NewEngine(d.Model(), retrieval.Config{Params: params})
			if err != nil {
				b.Fatal(err)
			}
			measureSearch(b, d, queries, engine.Search)
		})
	}
}

// BenchmarkAblationSearchPath compares the four retrieval paths: the
// sequential scan, the index-pruned full scoring (default), the literal
// Algorithm 1 TA merge, and its exhaustive-merge variant.
func BenchmarkAblationSearchPath(b *testing.B) {
	d, queries := ablationFixture(b)
	engine, err := retrieval.NewEngine(d.Model(), retrieval.Config{})
	if err != nil {
		b.Fatal(err)
	}
	paths := []struct {
		name   string
		search func(q *Object, k int, exclude ObjectID) []topk.Item
	}{
		{"scan", engine.SearchScan},
		{"index+fullscore", engine.Search},
		{"index+TA", engine.SearchTA},
		{"index+fullmerge", engine.SearchMergeFull},
	}
	for _, p := range paths {
		b.Run(p.name, func(b *testing.B) {
			measureSearch(b, d, queries, p.search)
		})
	}
}

// BenchmarkAblationThreshold sweeps the trained correlation threshold
// quantile — denser FIGs cost more but may capture more interactions.
func BenchmarkAblationThreshold(b *testing.B) {
	d, queries := ablationFixture(b)
	for _, tc := range []struct {
		name     string
		quantile float64
	}{{"edges=sparse(q0.2)", 0.2}, {"edges=default(q0.35)", 0.35}, {"edges=dense(q0.6)", 0.6}} {
		b.Run(tc.name, func(b *testing.B) {
			m := d.Model()
			m.TrainThresholds(150, tc.quantile, rand.New(rand.NewSource(5)))
			engine, err := retrieval.NewEngine(m, retrieval.Config{})
			if err != nil {
				b.Fatal(err)
			}
			measureSearch(b, d, queries, engine.Search)
		})
	}
}

// BenchmarkAblationRecommendDecay sweeps δ on a small recommendation
// workload, reporting recommendation P@10.
func BenchmarkAblationRecommendDecay(b *testing.B) {
	cfg := dataset.DefaultConfig()
	cfg.NumObjects = 500
	cfg.NumTopics = 10
	rc := dataset.DefaultRecConfig()
	rc.NumUsers = 8
	rc.MinHistory = 3
	rd, err := dataset.GenerateRec(cfg, rc)
	if err != nil {
		b.Fatal(err)
	}
	model := rd.Model()
	for _, tc := range []struct {
		name  string
		delta float64
	}{{"delta=1.0", 1.0}, {"delta=0.4", 0.4}, {"delta=0.1", 0.1}} {
		b.Run(tc.name, func(b *testing.B) {
			params := mrf.DefaultParams()
			params.Delta = tc.delta
			rec, err := NewRecommender(model, RecommenderConfig{Temporal: true, Params: params})
			if err != nil {
				b.Fatal(err)
			}
			sys := eval.FIGRecSystem{Rec: rec}
			b.ReportAllocs()
			b.ResetTimer()
			var p map[int]float64
			for i := 0; i < b.N; i++ {
				p = eval.RecommendationPrecision(sys, rd, []int{10})
			}
			b.ReportMetric(p[10], "P@10")
		})
	}
}

// BenchmarkAblationCandidateCap sweeps the two-stage candidate cap: lower
// caps bound query latency, trading a little precision.
func BenchmarkAblationCandidateCap(b *testing.B) {
	d, queries := ablationFixture(b)
	for _, tc := range []struct {
		name string
		cap  int
	}{{"cap=unlimited", 0}, {"cap=100", 100}, {"cap=25", 25}} {
		b.Run(tc.name, func(b *testing.B) {
			engine, err := retrieval.NewEngine(d.Model(), retrieval.Config{CandidateCap: tc.cap})
			if err != nil {
				b.Fatal(err)
			}
			measureSearch(b, d, queries, engine.Search)
		})
	}
}

// BenchmarkAblationPruning sweeps the block-max pruning modes over both
// the full-scoring Search path and the Algorithm 1 TA path. The exact
// modes must report identical P@10 (pruning is result-preserving with
// quantization off); the quantized mode trades candidate selection for a
// cheaper first pass, rescored exactly.
func BenchmarkAblationPruning(b *testing.B) {
	d, queries := ablationFixture(b)
	for _, mode := range []retrieval.PruningMode{
		retrieval.PruneOff, retrieval.PruneBlockMax, retrieval.PruneBlockMaxQuantized,
	} {
		engine, err := retrieval.NewEngine(d.Model(), retrieval.Config{Pruning: mode})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("search/"+mode.String(), func(b *testing.B) {
			measureSearch(b, d, queries, engine.Search)
		})
		b.Run("searchTA/"+mode.String(), func(b *testing.B) {
			measureSearch(b, d, queries, engine.SearchTA)
		})
	}
}
