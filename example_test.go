package figfusion_test

import (
	"fmt"
	"log"

	"figfusion"
)

// The examples below are compiled as part of the test suite and double as
// godoc usage documentation for the main entry points.

// ExampleNewEngine shows the minimal retrieval flow: generate a corpus,
// build the engine, run a query.
func ExampleNewEngine() {
	cfg := figfusion.DefaultConfig()
	cfg.NumObjects = 300
	data, err := figfusion.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := figfusion.NewEngine(data, figfusion.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	query := data.Corpus.Object(0)
	results := engine.Search(query, 3, query.ID)
	fmt.Println(len(results) > 0)
	// Output: true
}

// ExampleTextQuery shows free-text retrieval through the tag pipeline.
func ExampleTextQuery() {
	c := figfusion.NewCorpus()
	if _, err := c.Add(
		[]figfusion.Feature{{Kind: figfusion.Text, Name: "hamster"}},
		[]int{1}, 0); err != nil {
		log.Fatal(err)
	}
	q, ok := figfusion.TextQuery(c, "The hamsters!")
	fmt.Println(ok, q.Len())
	// Output: true 1
}

// ExampleNewRecommender shows temporal recommendation over user histories.
func ExampleNewRecommender() {
	cfg := figfusion.DefaultConfig()
	cfg.NumObjects = 400
	rc := figfusion.DefaultRecConfig()
	rc.NumUsers = 5
	rc.MinHistory = 3
	rd, err := figfusion.GenerateRec(cfg, rc)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := figfusion.NewRecommender(rd.Model(), figfusion.RecommenderConfig{Temporal: true})
	if err != nil {
		log.Fatal(err)
	}
	p := rd.Profiles[0]
	items := rec.Recommend(rd.HistoryObjects(p), rd.Candidates, 5, rd.Now)
	fmt.Println(len(items) > 0)
	// Output: true
}

// ExampleNewModel shows assembling a model over a hand-built corpus — the
// path for callers with their own data.
func ExampleNewModel() {
	c := figfusion.NewCorpus()
	for _, tags := range [][]string{{"cat", "pet"}, {"cat", "cute"}} {
		feats := make([]figfusion.Feature, len(tags))
		counts := make([]int, len(tags))
		for i, tag := range tags {
			feats[i] = figfusion.Feature{Kind: figfusion.Text, Name: tag}
			counts[i] = 1
		}
		if _, err := c.Add(feats, counts, 0); err != nil {
			log.Fatal(err)
		}
	}
	m := figfusion.NewModel(c, nil, nil, nil, nil, nil)
	engine, err := figfusion.NewEngineFromModel(m, figfusion.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	q := c.Object(0)
	results := engine.Search(q, 1, q.ID)
	fmt.Println(results[0].ID)
	// Output: 1
}

// ExampleKMedoids shows similarity-based clustering with purity evaluation.
func ExampleKMedoids() {
	cfg := figfusion.DefaultConfig()
	cfg.NumObjects = 200
	cfg.NumTopics = 4
	data, err := figfusion.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := figfusion.NewEngine(data, figfusion.EngineConfig{SkipIndex: true})
	if err != nil {
		log.Fatal(err)
	}
	ids := make([]figfusion.ObjectID, data.Corpus.Len())
	for i := range ids {
		ids[i] = figfusion.ObjectID(i)
	}
	res, err := figfusion.KMedoids(engine, ids, figfusion.ClusterConfig{K: 4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Purity(data.Corpus) > 0.5)
	// Output: true
}
