// Package figfusion is a Go implementation of "Multiple Feature Fusion for
// Social Media Applications" (Cui, Tung, Zhang, Zhao — SIGMOD 2010): the
// Feature Interaction Graph (FIG) representation of multi-modal social
// media objects, the Markov-Random-Field similarity model over it, a
// clique inverted index for large-scale retrieval, and the temporally
// decayed FIG-T recommender.
//
// The package is a facade over the implementation packages; the typical
// flow is:
//
//	cfg := figfusion.DefaultConfig()
//	cfg.NumObjects = 5000
//	data, err := figfusion.Generate(cfg)       // or load a real corpus
//	engine, err := figfusion.NewEngine(data, figfusion.EngineConfig{})
//	results := engine.Search(query, 10, figfusion.NoExclude)
//
// and for recommendation:
//
//	rec, err := figfusion.NewRecommender(data.Model(), figfusion.RecommenderConfig{Temporal: true})
//	items := rec.Recommend(history, candidates, 10, nowMonth)
//
// Corpora other than the bundled synthetic generator can be built directly
// with NewCorpus/Add and wired through NewModel.
package figfusion

import (
	"figfusion/internal/classify"
	"figfusion/internal/clustering"
	"figfusion/internal/corr"
	"figfusion/internal/dataset"
	"figfusion/internal/fig"
	"figfusion/internal/lexicon"
	"figfusion/internal/media"
	"figfusion/internal/mrf"
	"figfusion/internal/recommend"
	"figfusion/internal/retrieval"
	"figfusion/internal/social"
	"figfusion/internal/textproc"
	"figfusion/internal/topk"
	"figfusion/internal/vision"
)

// Core data model.
type (
	// Kind is a feature modality (Text, Visual or User).
	Kind = media.Kind
	// Feature is one modality-qualified feature of an object.
	Feature = media.Feature
	// FID is an interned feature identifier.
	FID = media.FID
	// Object is one multi-modal media object O = ⟨T, V, U⟩.
	Object = media.Object
	// ObjectID identifies an object within a corpus.
	ObjectID = media.ObjectID
	// Corpus is the social media database D.
	Corpus = media.Corpus
)

// The three feature modalities.
const (
	Text   = media.Text
	Visual = media.Visual
	User   = media.User
	Audio  = media.Audio
)

// Model layer.
type (
	// Model evaluates feature correlations (Eq. 1, WUP, visual-word and
	// group similarities) and decides FIG edges.
	Model = corr.Model
	// Params are the MRF parameters Λ plus the α smoothing and δ decay.
	Params = mrf.Params
	// Scorer evaluates clique potentials (Eqs. 7, 9, 10).
	Scorer = mrf.Scorer
	// Graph is the Feature Interaction Graph of one object.
	Graph = fig.Graph
	// Clique is a complete FIG subgraph (virtual root implicit).
	Clique = fig.Clique
	// GraphOptions configure FIG construction.
	GraphOptions = fig.Options
	// EnumerateOptions bound clique enumeration.
	EnumerateOptions = fig.EnumerateOptions
)

// Retrieval and recommendation engines.
type (
	// Engine answers top-k similarity queries (Algorithm 1).
	Engine = retrieval.Engine
	// EngineConfig assembles an Engine.
	EngineConfig = retrieval.Config
	// Recommender scores candidates against user profiles (Section 4).
	Recommender = recommend.Recommender
	// RecommenderConfig assembles a Recommender.
	RecommenderConfig = recommend.Config
	// Item is one scored result.
	Item = topk.Item
)

// NoExclude disables query-object exclusion in Engine.Search.
const NoExclude = retrieval.NoExclude

// Synthetic corpus generation (the offline Flickr substitute).
type (
	// Config controls corpus generation.
	Config = dataset.Config
	// RecConfig controls user-history generation.
	RecConfig = dataset.RecConfig
	// Dataset is a generated corpus with all substrates wired.
	Dataset = dataset.Dataset
	// RecDataset adds user profiles and the candidate pool.
	RecDataset = dataset.RecDataset
	// Profile is one user's favourite history and held-out future.
	Profile = dataset.Profile
	// MusicConfig controls music-corpus generation (the audio extension).
	MusicConfig = dataset.MusicConfig
)

// Substrates, exposed for callers assembling models over their own data.
type (
	// Taxonomy is the WordNet-substitute IS-A hierarchy with WUP.
	Taxonomy = lexicon.Taxonomy
	// Vocabulary is a k-means visual-word codebook.
	Vocabulary = vision.Vocabulary
	// Network holds users and interest-group memberships.
	Network = social.Network
	// UserID identifies a network user.
	UserID = social.UserID
	// GroupID identifies an interest group.
	GroupID = social.GroupID
)

// DefaultConfig returns the laptop-scale corpus configuration.
func DefaultConfig() Config { return dataset.DefaultConfig() }

// DefaultRecConfig returns the laptop-scale recommendation configuration.
func DefaultRecConfig() RecConfig { return dataset.DefaultRecConfig() }

// DefaultParams returns the default MRF parameters.
func DefaultParams() Params { return mrf.DefaultParams() }

// Generate builds a synthetic corpus with planted topic structure.
func Generate(cfg Config) (*Dataset, error) { return dataset.Generate(cfg) }

// GenerateRec builds a corpus plus user favourite histories with drift.
func GenerateRec(cfg Config, rc RecConfig) (*RecDataset, error) {
	return dataset.GenerateRec(cfg, rc)
}

// DefaultMusicConfig returns the laptop-scale music corpus configuration.
func DefaultMusicConfig() MusicConfig { return dataset.DefaultMusicConfig() }

// GenerateMusic builds a synthetic music corpus — tracks with tags, audio
// words and listeners — realising the paper's music-environment extension.
func GenerateMusic(cfg MusicConfig) (*Dataset, error) { return dataset.GenerateMusic(cfg) }

// NewCorpus returns an empty corpus for callers ingesting their own data.
func NewCorpus() *Corpus { return media.NewCorpus() }

// NewModel wires a correlation model over a corpus and optional substrates
// (any of taxonomy, vocabulary, network may be nil; intra-type correlation
// then falls back to the Eq. 1 co-occurrence cosine).
func NewModel(c *Corpus, tax *Taxonomy, vocab *Vocabulary, net *Network,
	visualWord map[FID]int, userOf map[FID]UserID) *Model {
	return corr.NewModel(corr.NewStats(c), tax, vocab, net, visualWord, userOf)
}

// NewEngine builds a retrieval engine (correlation model + MRF scorer +
// clique inverted index) over a generated dataset.
func NewEngine(d *Dataset, cfg EngineConfig) (*Engine, error) {
	return retrieval.NewEngine(d.Model(), cfg)
}

// NewEngineFromModel builds a retrieval engine over a caller-assembled
// correlation model.
func NewEngineFromModel(m *Model, cfg EngineConfig) (*Engine, error) {
	return retrieval.NewEngine(m, cfg)
}

// NewRecommender builds a FIG (or, with cfg.Temporal, FIG-T) recommender.
func NewRecommender(m *Model, cfg RecommenderConfig) (*Recommender, error) {
	return recommend.New(m, cfg)
}

// Relevant reports whether two objects share their planted primary topic —
// the ground-truth relevance oracle of the synthetic corpus.
func Relevant(a, b *Object) bool { return dataset.Relevant(a, b) }

// UnionObject merges several objects into one "big object" profile.
func UnionObject(id ObjectID, objects []*Object) *Object {
	return media.UnionObject(id, objects)
}

// TextQuery builds a query object from free-form text: the text is run
// through the paper's tag pipeline (tokenization, stop-word removal,
// Porter stemming — Section 5.1.3) and the surviving terms that exist in
// the corpus dictionary become the query's textual features. The returned
// object has ID -1 and is suitable for Engine.Search with NoExclude.
// The boolean reports whether any term matched the corpus vocabulary.
func TextQuery(c *Corpus, text string) (*Object, bool) {
	pipeline := textproc.NewPipeline(textproc.WithoutStemming())
	terms := pipeline.Normalize(text)
	// Corpora built from raw crawls are stemmed; try the stemmed form
	// when the surface form is unknown.
	var fcs []media.FeatureCount
	for _, term := range terms {
		fid, ok := c.Dict.Lookup(Feature{Kind: Text, Name: term})
		if !ok {
			fid, ok = c.Dict.Lookup(Feature{Kind: Text, Name: textproc.Stem(term)})
		}
		if !ok {
			continue
		}
		fcs = append(fcs, media.FeatureCount{FID: fid, Count: 1})
	}
	if len(fcs) == 0 {
		return media.NewObject(-1, nil, 0), false
	}
	return media.NewObject(-1, fcs, 0), true
}

// Classifier labels objects by FIG-similarity-weighted kNN — the
// classification application the paper's introduction motivates.
type Classifier = classify.Classifier

// NewClassifier builds a kNN topic classifier over a retrieval engine and
// a label map; k < 1 defaults to 10.
func NewClassifier(engine *Engine, labels map[ObjectID]int, k int) (*Classifier, error) {
	return classify.New(engine, labels, k)
}

// Clustering application (paper introduction: "retrieval, recommendation,
// classification, clustering, and so on").
type (
	// ClusterConfig controls k-medoids clustering.
	ClusterConfig = clustering.Config
	// ClusterResult is a clustering outcome with purity evaluation.
	ClusterResult = clustering.Result
)

// KMedoids clusters objects with the FIG/MRF similarity.
func KMedoids(engine *Engine, objects []ObjectID, cfg ClusterConfig) (*ClusterResult, error) {
	return clustering.KMedoids(engine, objects, cfg)
}

// GenerateRecFrom layers user favourite histories over an existing dataset
// (photo or music), enabling recommendation experiments on any corpus with
// planted topic and month labels.
func GenerateRecFrom(d *Dataset, numTopics, months int, rc RecConfig, seed int64) (*RecDataset, error) {
	return dataset.GenerateRecFrom(d, numTopics, months, rc, seed)
}
