# figfusion build/test targets. Everything is stdlib-only Go.

GO ?= go

.PHONY: all build test race bench bench-build bench-shard bench-cluster bench-load bench-prune bench-serve benchall vet fmt lint figlint figures examples clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Query-path benchmarks: the retrieval microbenches plus the serving-path
# measurement appended to the tracked baseline file (see "Query-path
# performance baseline" in EXPERIMENTS.md). The -perfgate flag fails the
# run if serial search throughput regresses more than 5% vs the previous
# recorded run.
bench: bench-build bench-shard bench-cluster bench-load bench-serve
	$(GO) test -bench='Search|CandidateSet' -benchmem ./internal/retrieval/...
	$(GO) run ./cmd/figbench -perf BENCH_retrieval.json -scale 800 -queries 12 -seed 1 -perfgate 5

# Build-path benchmarks: the bulk-weighting microbenches plus the offline
# build measurement (vocabulary, thresholds, index, lambda) appended to the
# tracked baseline file (see "Build-path performance baseline" in
# EXPERIMENTS.md).
bench-build:
	$(GO) test -bench='CliqueWeight|TrainVocabulary' -benchmem ./internal/corr/... ./internal/vq/...
	$(GO) run ./cmd/figbench -buildperf BENCH_build.json -scale 800 -trainqueries 12 -seed 1

# Pruning-mode sweep: the query path at -scale 4000 once per pruning mode
# (off / blockmax / blockmax-quantized) over one shared workload, each
# appended to the tracked file as its own labelled run series so the
# -perfgate baseline comparison stays like-vs-like (see "Top-k pruning" in
# DESIGN.md). The -prunegate flag fails the sweep unless blockmax reaches
# 1.5x off's serial TA throughput.
bench-prune:
	$(GO) run ./cmd/figbench -perf BENCH_retrieval.json -scale 4000 -queries 12 -seed 1 -perflabel prune-scale4000 -perfprune off,blockmax,blockmax-quantized -prunegate 1.5

# Cold-start benchmark: index snapshot size and load wall time, legacy gob
# vs serial/parallel binary segment, appended to the tracked baseline file
# (see "Cold-start baseline" in EXPERIMENTS.md). The -loadgate flag fails
# the run if the segment/parallel cold-start load time regresses more than
# 10% vs the previous recorded run at the same scale.
bench-load:
	$(GO) run ./cmd/figbench -loadperf BENCH_load.json -scale 20000 -seed 1 -loadgate 10

# Shard-scaling benchmark: scatter-gather Search at 1/2/4/NumCPU shards
# against the single-engine baseline, appended to the tracked baseline file
# (see "Sharded serving" in DESIGN.md).
bench-shard:
	$(GO) run ./cmd/figbench -shardperf BENCH_shard.json -scale 800 -queries 12 -seed 1

# Multi-node serving benchmark: scatter-gather Search over in-process vs
# loopback-HTTP backends against the single-engine baseline at a fixed
# two-node scale, appended to the tracked baseline file (see "Multi-node
# serving" in DESIGN.md).
bench-cluster:
	$(GO) run ./cmd/figbench -clusterperf BENCH_cluster.json -scale 800 -queries 12 -seed 1

# Live-traffic serving benchmark: closed-loop capacity against a real
# loopback figserver, then open-loop overload at 2x that capacity. Every
# run must satisfy the overload contract — explicit 503 sheds, no other
# failures, admitted p99 bounded — and the -servegate flag additionally
# fails the run if capacity drops more than 15% vs the previous recorded
# run at the same shape (see "Live-traffic serving" in DESIGN.md).
bench-serve:
	$(GO) run ./cmd/figbench -serveperf BENCH_serve.json -scale 800 -seed 1 -servegate 15

# Every microbenchmark in the repo (slow; includes the ablation sweeps).
benchall:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: numeric, determinism and concurrency
# invariants enforced by cmd/figlint (see DESIGN.md).
figlint:
	$(GO) run ./cmd/figlint ./...

lint: vet figlint

fmt:
	gofmt -w .

# Regenerate every paper figure at laptop scale (see EXPERIMENTS.md).
figures:
	$(GO) run ./cmd/figbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/photosearch
	$(GO) run ./examples/trendingrec
	$(GO) run ./examples/fusioncompare
	$(GO) run ./examples/topiclabel
	$(GO) run ./examples/musicdiscover

clean:
	$(GO) clean ./...
