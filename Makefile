# figfusion build/test targets. Everything is stdlib-only Go.

GO ?= go

.PHONY: all build test race bench vet fmt lint figlint figures examples clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: numeric, determinism and concurrency
# invariants enforced by cmd/figlint (see DESIGN.md).
figlint:
	$(GO) run ./cmd/figlint ./...

lint: vet figlint

fmt:
	gofmt -w .

# Regenerate every paper figure at laptop scale (see EXPERIMENTS.md).
figures:
	$(GO) run ./cmd/figbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/photosearch
	$(GO) run ./examples/trendingrec
	$(GO) run ./examples/fusioncompare
	$(GO) run ./examples/topiclabel
	$(GO) run ./examples/musicdiscover

clean:
	$(GO) clean ./...
