# figfusion build/test targets. Everything is stdlib-only Go.

GO ?= go

.PHONY: all build test race bench vet fmt figures examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Regenerate every paper figure at laptop scale (see EXPERIMENTS.md).
figures:
	$(GO) run ./cmd/figbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/photosearch
	$(GO) run ./examples/trendingrec
	$(GO) run ./examples/fusioncompare
	$(GO) run ./examples/topiclabel
	$(GO) run ./examples/musicdiscover

clean:
	$(GO) clean ./...
