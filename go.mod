module figfusion

go 1.22
