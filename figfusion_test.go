package figfusion

import "testing"

// TestFacadeEndToEnd drives the public API exactly as the package doc
// describes: generate → engine → search, and model → recommender.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumObjects = 300
	cfg.NumTopics = 6
	cfg.VisualVocab = 12
	cfg.VocabTrainImages = 40
	cfg.ImageBlocks = 2
	cfg.KMeansIters = 8
	data, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(data, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	q := data.Corpus.Object(0)
	results := engine.Search(q, 5, q.ID)
	if len(results) == 0 {
		t.Fatal("no results through the facade")
	}
	rel := 0
	for _, it := range results {
		if Relevant(q, data.Corpus.Object(it.ID)) {
			rel++
		}
	}
	if rel == 0 {
		t.Error("no relevant results")
	}

	rc := DefaultRecConfig()
	rc.NumUsers = 5
	rc.MinHistory = 3
	rd, err := GenerateRec(cfg, rc)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecommender(rd.Model(), RecommenderConfig{Temporal: true})
	if err != nil {
		t.Fatal(err)
	}
	p := rd.Profiles[0]
	items := rec.Recommend(rd.HistoryObjects(p), rd.Candidates, 5, rd.Now)
	if len(items) == 0 {
		t.Fatal("no recommendations through the facade")
	}
}

// TestFacadeCustomCorpus assembles a model over a hand-built corpus, the
// path a downstream user with real data takes.
func TestFacadeCustomCorpus(t *testing.T) {
	c := NewCorpus()
	for i, tags := range [][]string{{"cat", "pet"}, {"cat", "cute"}, {"car", "road"}} {
		feats := make([]Feature, len(tags))
		counts := make([]int, len(tags))
		for j, tag := range tags {
			feats[j] = Feature{Kind: Text, Name: tag}
			counts[j] = 1
		}
		if _, err := c.Add(feats, counts, i); err != nil {
			t.Fatal(err)
		}
	}
	m := NewModel(c, nil, nil, nil, nil, nil)
	engine, err := NewEngineFromModel(m, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	q := c.Object(0)
	results := engine.Search(q, 2, q.ID)
	if len(results) == 0 {
		t.Fatal("no results over custom corpus")
	}
	// The other cat object must outrank the car object.
	if results[0].ID != 1 {
		t.Errorf("top result = %v, want object 1", results[0])
	}
}

func TestUnionObjectFacade(t *testing.T) {
	a := &Object{Feats: []FID{1}, Counts: []uint16{1}}
	u := UnionObject(5, []*Object{a})
	if u.ID != 5 || u.Count(1) != 1 {
		t.Errorf("UnionObject = %+v", u)
	}
}

func TestTextQuery(t *testing.T) {
	c := NewCorpus()
	for _, tags := range [][]string{{"hamster", "broccoli"}, {"car", "road"}} {
		feats := make([]Feature, len(tags))
		counts := make([]int, len(tags))
		for j, tag := range tags {
			feats[j] = Feature{Kind: Text, Name: tag}
			counts[j] = 1
		}
		if _, err := c.Add(feats, counts, 0); err != nil {
			t.Fatal(err)
		}
	}
	q, ok := TextQuery(c, "The hamster eating broccoli!")
	if !ok {
		t.Fatal("TextQuery matched nothing")
	}
	if q.ID != -1 {
		t.Errorf("ID = %d, want -1", q.ID)
	}
	if q.Len() != 2 {
		t.Errorf("features = %d, want hamster+broccoli", q.Len())
	}
	// Stemmed fallback: corpus has "hamster", query says "hamsters".
	q2, ok := TextQuery(c, "hamsters")
	if !ok || q2.Len() != 1 {
		t.Errorf("stemmed fallback failed: ok=%v len=%d", ok, q2.Len())
	}
	// No match at all.
	if _, ok := TextQuery(c, "zebra quokka"); ok {
		t.Error("unknown terms should report !ok")
	}
	// Only stop words.
	if _, ok := TextQuery(c, "the of and"); ok {
		t.Error("stop-word-only query should report !ok")
	}
}

func TestTextQueryEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumObjects = 200
	cfg.NumTopics = 4
	cfg.VisualVocab = 12
	cfg.VocabTrainImages = 40
	cfg.ImageBlocks = 2
	cfg.KMeansIters = 8
	data, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(data, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	q, ok := TextQuery(data.Corpus, "topic00tag00 topic00tag01")
	if !ok {
		t.Fatal("generated tags not found")
	}
	results := engine.Search(q, 5, NoExclude)
	if len(results) == 0 {
		t.Fatal("text query found nothing")
	}
	// The majority of results should be topic-0 objects.
	onTopic := 0
	for _, it := range results {
		if data.Corpus.Object(it.ID).PrimaryTopic == 0 {
			onTopic++
		}
	}
	if onTopic < len(results)/2 {
		t.Errorf("only %d/%d results on the queried topic", onTopic, len(results))
	}
}
