// Topiclabel: classification over the fusion similarity — the third
// application the paper's introduction motivates. A third of the corpus is
// treated as unlabelled; a kNN classifier over the FIG/MRF similarity
// predicts each object's topic from its labelled neighbours, and accuracy
// is compared with a tags-only neighbourhood to show what the fused
// modalities add.
//
//	go run ./examples/topiclabel
package main

import (
	"fmt"
	"log"

	"figfusion"
)

func main() {
	cfg := figfusion.DefaultConfig()
	cfg.NumObjects = 900
	data, err := figfusion.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Label the first two thirds; hold out the rest.
	labels := make(map[figfusion.ObjectID]int)
	var test []*figfusion.Object
	cut := data.Corpus.Len() * 2 / 3
	for _, o := range data.Corpus.Objects {
		if int(o.ID) < cut {
			labels[o.ID] = o.PrimaryTopic
		} else {
			test = append(test, o)
		}
	}
	truth := func(o *figfusion.Object) int { return o.PrimaryTopic }

	for _, variant := range []struct {
		name  string
		kinds []figfusion.Kind
	}{
		{"tags-only kNN", []figfusion.Kind{figfusion.Text}},
		{"fused FIG kNN", nil},
	} {
		engine, err := figfusion.NewEngine(data, figfusion.EngineConfig{
			BuildOpts: figfusion.GraphOptions{Kinds: variant.kinds},
		})
		if err != nil {
			log.Fatal(err)
		}
		clf, err := figfusion.NewClassifier(engine, labels, 10)
		if err != nil {
			log.Fatal(err)
		}
		acc := clf.Accuracy(test, truth)
		fmt.Printf("%-16s accuracy = %.3f over %d held-out objects (%d topics, chance %.3f)\n",
			variant.name, acc, len(test), cfg.NumTopics, 1/float64(cfg.NumTopics))
	}
}
