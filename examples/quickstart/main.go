// Quickstart: generate a small social-media corpus, build the FIG
// retrieval engine, and run one similarity query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"figfusion"
)

func main() {
	// 1. A corpus. The generator is the offline stand-in for a Flickr
	// crawl: objects carry tags, visual words and users, correlated
	// within planted topics.
	cfg := figfusion.DefaultConfig()
	cfg.NumObjects = 1000
	data, err := figfusion.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d objects, %d distinct features\n",
		data.Corpus.Len(), data.Corpus.Dict.Len())

	// 2. The engine: correlation model + MRF scorer + clique inverted
	// index, all built from the corpus.
	engine, err := figfusion.NewEngine(data, figfusion.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Query with any object; exclude it from its own results.
	query := data.Corpus.Object(123)
	results := engine.Search(query, 5, query.ID)

	fmt.Printf("query object %d (topic %d):\n", query.ID, query.PrimaryTopic)
	for rank, item := range results {
		obj := data.Corpus.Object(item.ID)
		fmt.Printf("  %d. object %d  topic %d  score %.4f  relevant=%v\n",
			rank+1, obj.ID, obj.PrimaryTopic, item.Score, figfusion.Relevant(query, obj))
	}
}
