// Fusioncompare: why correlation-aware fusion matters. The example builds
// a simple late-fusion baseline by hand — per-modality cosine similarity,
// linearly combined — and compares it with the FIG engine on the same
// corpus. Late fusion merges the modality scores after the fact, so it
// cannot exploit inter-feature correlations (a tag predicting a user
// community, taxonomy-related tags); the FIG model codes those as graph
// edges and clique potentials.
//
//	go run ./examples/fusioncompare
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"figfusion"
)

func main() {
	cfg := figfusion.DefaultConfig()
	cfg.NumObjects = 1000
	data, err := figfusion.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := figfusion.NewEngine(data, figfusion.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	queries := data.SampleQueries(10, rng)

	figP := meanPrecision(queries, data, func(q *figfusion.Object) []figfusion.Item {
		return engine.Search(q, 10, q.ID)
	})
	lateP := meanPrecision(queries, data, func(q *figfusion.Object) []figfusion.Item {
		return lateFusionSearch(data, q, 10)
	})
	fmt.Printf("FIG (correlation-aware fusion):    P@10 = %.3f\n", figP)
	fmt.Printf("hand-rolled linear late fusion:    P@10 = %.3f\n", lateP)
}

func meanPrecision(queries []figfusion.ObjectID, data *figfusion.Dataset,
	search func(*figfusion.Object) []figfusion.Item) float64 {
	var total float64
	for _, qid := range queries {
		q := data.Corpus.Object(qid)
		results := search(q)
		rel := 0
		for _, it := range results {
			if figfusion.Relevant(q, data.Corpus.Object(it.ID)) {
				rel++
			}
		}
		if len(results) > 0 {
			total += float64(rel) / float64(len(results))
		}
	}
	return total / float64(len(queries))
}

// lateFusionSearch scores every object as an equal-weight combination of
// per-modality cosine similarities — the classic late-fusion recipe.
func lateFusionSearch(data *figfusion.Dataset, q *figfusion.Object, k int) []figfusion.Item {
	type scored struct {
		id    figfusion.ObjectID
		score float64
	}
	var all []scored
	for _, o := range data.Corpus.Objects {
		if o.ID == q.ID {
			continue
		}
		var sum float64
		for _, kind := range []figfusion.Kind{figfusion.Text, figfusion.Visual, figfusion.User} {
			sum += kindCosine(data.Corpus, q, o, kind)
		}
		if sum > 0 {
			all = append(all, scored{o.ID, sum / 3})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		//figlint:allow floatcmp -- sort comparators need the exact tie-break; an epsilon band is not transitive
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].id < all[j].id
	})
	if len(all) > k {
		all = all[:k]
	}
	items := make([]figfusion.Item, len(all))
	for i, s := range all {
		items[i] = figfusion.Item{ID: s.id, Score: s.score}
	}
	return items
}

func kindCosine(c *figfusion.Corpus, a, b *figfusion.Object, kind figfusion.Kind) float64 {
	var dot float64
	// The norms are sums of squared integer counts; accumulating them as
	// ints keeps the emptiness check exact (and floatcmp-clean).
	var na, nb int
	for i, f := range a.Feats {
		if c.KindOf(f) != kind {
			continue
		}
		na += int(a.Counts[i]) * int(a.Counts[i])
		if cb := b.Count(f); cb > 0 {
			dot += float64(a.Counts[i]) * float64(cb)
		}
	}
	for i, f := range b.Feats {
		if c.KindOf(f) != kind {
			continue
		}
		nb += int(b.Counts[i]) * int(b.Counts[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(float64(na)) * math.Sqrt(float64(nb)))
}
