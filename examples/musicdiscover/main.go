// Musicdiscover: the paper's extension claim in action — the same FIG
// fusion machinery over a music corpus (tracks ⟨tags, audio words,
// listeners⟩ instead of images ⟨tags, visual words, users⟩), the semantic
// music discovery scenario of the paper's late-fusion competitor [21].
// Audio content alone suffers the same semantic gap as visual content;
// fusing it with tags and listener communities recovers genre structure.
//
//	go run ./examples/musicdiscover
package main

import (
	"fmt"
	"log"
	"math/rand"

	"figfusion"
)

func main() {
	cfg := figfusion.DefaultMusicConfig()
	cfg.NumTracks = 800
	data, err := figfusion.GenerateMusic(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("music corpus: %d tracks, %d genres, %d-word audio codebook\n",
		data.Corpus.Len(), cfg.NumGenres, data.AudioVocab.Size())

	rng := rand.New(rand.NewSource(5))
	queries := data.SampleQueries(10, rng)

	for _, variant := range []struct {
		name  string
		kinds []figfusion.Kind
	}{
		{"audio only", []figfusion.Kind{figfusion.Audio}},
		{"tags only", []figfusion.Kind{figfusion.Text}},
		{"listeners only", []figfusion.Kind{figfusion.User}},
		{"fused FIG", nil},
	} {
		engine, err := figfusion.NewEngine(data, figfusion.EngineConfig{
			BuildOpts: figfusion.GraphOptions{Kinds: variant.kinds},
		})
		if err != nil {
			log.Fatal(err)
		}
		var precision float64
		for _, qid := range queries {
			q := data.Corpus.Object(qid)
			results := engine.Search(q, 10, q.ID)
			rel := 0
			for _, it := range results {
				if figfusion.Relevant(q, data.Corpus.Object(it.ID)) {
					rel++
				}
			}
			if len(results) > 0 {
				precision += float64(rel) / float64(len(results))
			}
		}
		fmt.Printf("%-16s genre P@10 = %.3f\n", variant.name, precision/float64(len(queries)))
	}
}
