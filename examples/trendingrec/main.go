// Trendingrec: the Section 4 scenario — recommendation under interest
// drift. Users in the generated histories have persistent interests plus an
// early transient burst (the paper's "Obama during the election" example).
// The example sweeps the temporal decay δ and shows that moderate decay
// (δ ≈ 0.4) beats both no decay (stale burst pollutes the profile) and
// aggressive decay (early persistent evidence is thrown away) — the shape
// of the paper's Figure 10.
//
//	go run ./examples/trendingrec
package main

import (
	"fmt"
	"log"

	"figfusion"
)

func main() {
	cfg := figfusion.DefaultConfig()
	cfg.NumObjects = 1200
	rc := figfusion.DefaultRecConfig()
	rc.NumUsers = 15
	rd, err := figfusion.GenerateRec(cfg, rc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d users, %d candidate objects in the evaluation months\n",
		len(rd.Profiles), len(rd.Candidates))

	model := rd.Model()
	for _, delta := range []float64{1.0, 0.6, 0.4, 0.1} {
		params := figfusion.DefaultParams()
		params.Delta = delta
		rec, err := figfusion.NewRecommender(model, figfusion.RecommenderConfig{
			Temporal: true,
			Params:   params,
		})
		if err != nil {
			log.Fatal(err)
		}
		var precision float64
		for _, p := range rd.Profiles {
			items := rec.Recommend(rd.HistoryObjects(p), rd.Candidates, 10, rd.Now)
			hits := 0
			for _, it := range items {
				if p.Future[it.ID] {
					hits++
				}
			}
			if len(items) > 0 {
				precision += float64(hits) / float64(len(items))
			}
		}
		fmt.Printf("δ=%.1f  P@10 = %.3f\n", delta, precision/float64(len(rd.Profiles)))
	}
}
