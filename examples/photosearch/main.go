// Photosearch: the Figure 5 scenario — how much each feature modality
// contributes to photo retrieval. A single corpus is queried with the FIG
// engine restricted to each modality subset, reproducing the paper's
// feature-combination ablation: visual content alone suffers from the
// semantic gap, tags are the strongest single signal, and fusing all three
// modalities wins.
//
//	go run ./examples/photosearch
package main

import (
	"fmt"
	"log"
	"math/rand"

	"figfusion"
)

func main() {
	cfg := figfusion.DefaultConfig()
	cfg.NumObjects = 1000
	data, err := figfusion.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	queries := data.SampleQueries(10, rng)

	combos := []struct {
		label string
		kinds []figfusion.Kind
	}{
		{"visual only", []figfusion.Kind{figfusion.Visual}},
		{"tags only", []figfusion.Kind{figfusion.Text}},
		{"users only", []figfusion.Kind{figfusion.User}},
		{"tags+users", []figfusion.Kind{figfusion.Text, figfusion.User}},
		{"all three (FIG)", nil},
	}
	fmt.Printf("%-18s %8s\n", "features", "P@10")
	for _, combo := range combos {
		engine, err := figfusion.NewEngine(data, figfusion.EngineConfig{
			BuildOpts: figfusion.GraphOptions{Kinds: combo.kinds},
		})
		if err != nil {
			log.Fatal(err)
		}
		var precision float64
		for _, qid := range queries {
			q := data.Corpus.Object(qid)
			results := engine.Search(q, 10, q.ID)
			rel := 0
			for _, it := range results {
				if figfusion.Relevant(q, data.Corpus.Object(it.ID)) {
					rel++
				}
			}
			if len(results) > 0 {
				precision += float64(rel) / float64(len(results))
			}
		}
		fmt.Printf("%-18s %8.3f\n", combo.label, precision/float64(len(queries)))
	}
}
